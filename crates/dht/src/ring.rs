//! The Chord ring: membership, maintenance and lookups.

use crate::key::RingBuildHasher;
use crate::{ChordNode, DhtError, Id, ID_BITS, SUCCESSOR_LIST_LEN};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Result of routing a lookup through the ring.
///
/// The visited path is shared behind an [`Arc`] with the route cache: a
/// memoized lookup hands out the cached walk without copying it, and the
/// accessors slice into the shared vector. `start` is non-zero for results
/// served from a cached suffix (the walk of a mid-path node).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResult {
    /// The node responsible for the key (`Successor(key)`).
    pub owner: Id,
    path: Arc<Vec<Id>>,
    start: usize,
}

impl LookupResult {
    fn from_walk(path: Vec<Id>) -> Self {
        let owner = *path.last().expect("walked paths are non-empty");
        LookupResult { owner, path: Arc::new(path), start: 0 }
    }

    /// A single-hop result: `from` resolved `owner` without walking the
    /// overlay. This is what a transport backed by a full membership view
    /// (every node knows every owner) reports — one hop, `path = [from,
    /// owner]` — and the degenerate self-lookup collapses to a zero-hop
    /// path.
    pub fn direct(from: Id, owner: Id) -> Self {
        if from == owner {
            LookupResult::from_walk(vec![owner])
        } else {
            LookupResult::from_walk(vec![from, owner])
        }
    }

    /// Every node the lookup visited, starting with the originating node
    /// and ending with the owner.
    pub fn path(&self) -> &[Id] {
        &self.path[self.start..]
    }

    /// Number of routing hops (`path().len() - 1`).
    pub fn hops(&self) -> usize {
        self.path.len() - 1 - self.start
    }
}

/// Initial capacity of a walk's path vector: Chord walks are `O(log N)`
/// hops, so a small up-front reservation makes per-hop pushes allocation
/// free for every realistic ring size (growth still handles the pathological
/// repair-heavy walks).
const PATH_CAPACITY: usize = 16;

/// A simulated Chord network.
///
/// All nodes live in one process, mirroring the paper's Java simulator. The
/// structure keeps the ground-truth ring membership in a sorted map (used
/// for ownership oracles and assertions) while each [`ChordNode`] keeps its
/// own — possibly stale — routing state (successor list, predecessor,
/// fingers) that is used for actual lookups and is repaired by periodic
/// stabilization, exactly as the Chord protocol prescribes.
#[derive(Debug, Clone)]
pub struct ChordNetwork {
    nodes: BTreeMap<Id, ChordNode>,
    successor_list_len: usize,
    /// Upper bound on lookup path length before declaring the routing state
    /// broken.
    max_hops: usize,
    /// Memoized `(from, key)` lookup routes. On a stable ring the walk is
    /// a pure function of the routing state, and greedy routing is
    /// *memoryless* — each hop depends only on the current node and the
    /// key — so every proper suffix of a walked path is exactly the walk
    /// its first node would produce. One walk therefore seeds an entry for
    /// every node it visited (all sharing one `Arc`'d path), and later
    /// walks splice onto a cached tail the moment they touch any
    /// previously visited node. The cache is cleared whenever anything
    /// that can change a path changes: membership (join/leave/fail/move)
    /// and every stabilization or in-walk repair step.
    route_cache: HashMap<(Id, Id), CachedRoute, RingBuildHasher>,
}

/// One memoized route: a shared full walk plus the offset this entry's
/// suffix starts at (`path[start]` is the entry's origin node, the final
/// element is the owner).
#[derive(Debug, Clone)]
struct CachedRoute {
    path: Arc<Vec<Id>>,
    start: usize,
}

impl CachedRoute {
    fn result(&self) -> LookupResult {
        let owner = *self.path.last().expect("cached paths are non-empty");
        LookupResult { owner, path: Arc::clone(&self.path), start: self.start }
    }
}

impl ChordNetwork {
    /// Creates an empty network whose nodes maintain successor lists of
    /// `successor_list_len` entries (clamped to `1..=`[`SUCCESSOR_LIST_LEN`]).
    pub fn new(successor_list_len: usize) -> Self {
        ChordNetwork {
            nodes: BTreeMap::new(),
            successor_list_len: successor_list_len.clamp(1, SUCCESSOR_LIST_LEN),
            max_hops: 4 * ID_BITS as usize,
            route_cache: HashMap::default(),
        }
    }

    /// Drops every memoized route. Called by every operation that can
    /// change a lookup path; cheap when the cache is already empty.
    fn invalidate_routes(&mut self) {
        self.route_cache.clear();
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is a live node.
    pub fn contains(&self, id: Id) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterates over the live node identifiers in ring order.
    pub fn node_ids(&self) -> impl Iterator<Item = Id> + '_ {
        self.nodes.keys().copied()
    }

    /// Read access to a node's routing state.
    pub fn node(&self, id: Id) -> Option<&ChordNode> {
        self.nodes.get(&id)
    }

    /// Ground-truth owner of `key`: the first live node whose identifier is
    /// equal to or follows `key` clockwise.
    pub fn successor_of(&self, key: Id) -> Result<Id, DhtError> {
        if self.nodes.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        Ok(self
            .nodes
            .range(key..)
            .next()
            .or_else(|| self.nodes.iter().next())
            .map(|(id, _)| *id)
            .expect("non-empty ring"))
    }

    /// Ground-truth predecessor of `id` on the ring (the closest live node
    /// counter-clockwise, excluding `id` itself).
    pub fn predecessor_of(&self, id: Id) -> Result<Id, DhtError> {
        if self.nodes.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        Ok(self
            .nodes
            .range(..id)
            .next_back()
            .or_else(|| self.nodes.iter().next_back())
            .map(|(i, _)| *i)
            .expect("non-empty ring"))
    }

    /// Adds a node to the ring.
    ///
    /// The join wires up the new node's successor list and its neighbours'
    /// immediate pointers (the effect of the join protocol's first
    /// stabilization exchange); finger tables start stale and are repaired
    /// by [`stabilize_round`](Self::stabilize_round) or
    /// [`full_stabilize`](Self::full_stabilize).
    pub fn join(&mut self, id: Id) -> Result<(), DhtError> {
        if self.nodes.contains_key(&id) {
            return Err(DhtError::NodeExists { id });
        }
        self.invalidate_routes();
        let mut node = ChordNode::new(id);
        if !self.nodes.is_empty() {
            let succ = self.successor_of(id)?;
            let pred = self.predecessor_of(id)?;
            node.set_successors(vec![succ]);
            node.set_predecessor(Some(pred));
            self.nodes.insert(id, node);
            // Immediate neighbours learn about the newcomer right away.
            if let Some(p) = self.nodes.get_mut(&pred) {
                let mut succs = vec![id];
                succs.extend(p.successor_list().iter().copied());
                p.set_successors(succs);
            }
            if let Some(s) = self.nodes.get_mut(&succ) {
                s.set_predecessor(Some(id));
            }
        } else {
            self.nodes.insert(id, node);
        }
        Ok(())
    }

    /// Removes a node gracefully: its neighbours are informed and repair
    /// their pointers immediately.
    pub fn leave(&mut self, id: Id) -> Result<(), DhtError> {
        if !self.nodes.contains_key(&id) {
            return Err(DhtError::UnknownNode { id });
        }
        self.invalidate_routes();
        self.nodes.remove(&id);
        if self.nodes.is_empty() {
            return Ok(());
        }
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for nid in ids {
            if let Some(n) = self.nodes.get_mut(&nid) {
                n.forget(id);
            }
        }
        // Re-point the immediate neighbours at each other.
        let succ = self.successor_of(id)?;
        let pred = self.predecessor_of(id)?;
        if let Some(p) = self.nodes.get_mut(&pred) {
            let mut succs = vec![succ];
            succs.extend(p.successor_list().iter().copied());
            p.set_successors(succs);
        }
        if let Some(s) = self.nodes.get_mut(&succ) {
            s.set_predecessor(Some(pred));
        }
        Ok(())
    }

    /// Removes a node abruptly (a crash): other nodes keep stale pointers to
    /// it until they detect the failure during lookups or stabilization.
    pub fn fail(&mut self, id: Id) -> Result<(), DhtError> {
        if self.nodes.remove(&id).is_none() {
            return Err(DhtError::UnknownNode { id });
        }
        self.invalidate_routes();
        Ok(())
    }

    /// Runs one round of periodic maintenance on every node: `stabilize`
    /// (reconcile with the successor's predecessor pointer), successor-list
    /// refresh, failure detection, and one `fix_fingers` step.
    pub fn stabilize_round(&mut self) {
        self.invalidate_routes();
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for id in ids {
            self.stabilize_node(id);
            self.fix_one_finger(id);
        }
    }

    fn stabilize_node(&mut self, id: Id) {
        let Some(node) = self.nodes.get(&id) else { return };
        let mut successor = node.successor();

        // Drop dead successors until a live one is found.
        if !self.nodes.contains_key(&successor) && successor != id {
            let list: Vec<Id> = node.successor_list().to_vec();
            let next_live = list.iter().copied().find(|s| self.nodes.contains_key(s));
            let node = self.nodes.get_mut(&id).expect("node exists");
            node.forget(successor);
            successor = next_live.unwrap_or(id);
            node.set_successors(vec![successor]);
        }

        if successor == id {
            // Either a one-node ring or every known successor failed; fall
            // back to the ground-truth ring to model the node eventually
            // re-discovering a live peer via its other pointers.
            if self.nodes.len() > 1 {
                let true_succ = self
                    .nodes
                    .range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded))
                    .next()
                    .or_else(|| self.nodes.iter().next())
                    .map(|(i, _)| *i)
                    .expect("non-empty");
                if true_succ != id {
                    successor = true_succ;
                    self.nodes.get_mut(&id).expect("node exists").set_successors(vec![successor]);
                }
            }
        }

        // stabilize(): ask the successor for its predecessor; adopt it if it
        // sits between us and the successor.
        if successor != id {
            let succ_pred = self.nodes.get(&successor).and_then(|s| s.predecessor());
            if let Some(x) = succ_pred {
                if self.nodes.contains_key(&x) && x.in_open_interval(id, successor) {
                    self.nodes.get_mut(&id).expect("node exists").set_successors(vec![x]);
                }
            }
            let successor = self.nodes.get(&id).expect("node exists").successor();
            // notify(): tell the successor about us.
            let adopt = match self.nodes.get(&successor).and_then(|s| s.predecessor()) {
                None => self.nodes.contains_key(&successor),
                Some(p) => !self.nodes.contains_key(&p) || id.in_open_interval(p, successor),
            };
            if adopt {
                if let Some(s) = self.nodes.get_mut(&successor) {
                    s.set_predecessor(Some(id));
                }
            }
            // Refresh the successor list from the successor's list.
            let succ_list: Vec<Id> =
                self.nodes.get(&successor).map(|s| s.successor_list().to_vec()).unwrap_or_default();
            let mut new_list = vec![successor];
            new_list.extend(succ_list.into_iter().filter(|s| *s != id));
            new_list.retain(|s| self.nodes.contains_key(s));
            new_list.truncate(self.successor_list_len);
            self.nodes.get_mut(&id).expect("node exists").set_successors(new_list);
        }

        // check_predecessor(): drop a dead predecessor.
        let pred = self.nodes.get(&id).and_then(|n| n.predecessor());
        if let Some(p) = pred {
            if !self.nodes.contains_key(&p) {
                self.nodes.get_mut(&id).expect("node exists").set_predecessor(None);
            }
        }
    }

    fn fix_one_finger(&mut self, id: Id) {
        let Some(node) = self.nodes.get_mut(&id) else { return };
        let k = node.take_next_finger();
        let start = id.finger_start(k);
        let target = match self.successor_of(start) {
            Ok(t) => t,
            Err(_) => return,
        };
        if let Some(node) = self.nodes.get_mut(&id) {
            node.fingers_mut().set(k as usize, Some(target));
        }
    }

    /// Brings every node's routing state to the fully stabilized fixpoint:
    /// correct successor lists, predecessors and finger tables. Equivalent
    /// to running enough stabilization rounds; used to set up experiments
    /// quickly.
    pub fn full_stabilize(&mut self) {
        self.invalidate_routes();
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for &id in &ids {
            let succ_list = self.truth_successor_list(id);
            let pred = self.predecessor_of(id).ok();
            let node = self.nodes.get_mut(&id).expect("node exists");
            node.set_successors(succ_list);
            node.set_predecessor(pred.filter(|p| *p != id));
        }
        for &id in &ids {
            for k in 0..ID_BITS {
                let start = id.finger_start(k);
                let target = self.successor_of(start).expect("non-empty ring");
                self.nodes
                    .get_mut(&id)
                    .expect("node exists")
                    .fingers_mut()
                    .set(k as usize, Some(target));
            }
        }
    }

    fn truth_successor_list(&self, id: Id) -> Vec<Id> {
        let mut list = Vec::with_capacity(self.successor_list_len);
        let mut current = id;
        for _ in 0..self.successor_list_len.min(self.nodes.len().saturating_sub(1)) {
            let next = self
                .nodes
                .range((std::ops::Bound::Excluded(current), std::ops::Bound::Unbounded))
                .next()
                .or_else(|| self.nodes.iter().next())
                .map(|(i, _)| *i)
                .expect("non-empty ring");
            if next == id {
                break;
            }
            list.push(next);
            current = next;
        }
        if list.is_empty() {
            list.push(id);
        }
        list
    }

    /// Routes a lookup for `key` starting at node `from`, following finger
    /// tables exactly as Chord's iterative lookup does, and repairing
    /// pointers to dead nodes it encounters along the way (modelling the
    /// timeout-and-retry behaviour of a real deployment).
    ///
    /// Returns the owner plus the full path taken, which the network layer
    /// uses to account routed messages per node.
    pub fn lookup(&mut self, from: Id, key: Id) -> Result<LookupResult, DhtError> {
        if let Some(hit) = self.route_cache.get(&(from, key)) {
            return Ok(hit.result());
        }
        let mut repaired = false;
        let result = self.lookup_walk(from, key, &mut repaired);
        if repaired {
            // The walk repaired routing pointers: every memoized path may
            // now be stale, including the one just computed (its early hops
            // predate the repair). Drop them all; subsequent walks re-fill.
            self.invalidate_routes();
        } else if let Ok(result) = &result {
            // Memoize every proper suffix of the walk under its first node:
            // greedy routing is memoryless, so the tail starting at any
            // visited node is exactly the walk that node would produce. The
            // final element (the owner) is *not* a valid origin — a walk
            // from the owner circles the ring rather than returning itself
            // — except in the degenerate single-element path, which really
            // was walked from that node. The entries share the result's own
            // `Arc`'d path — no copies.
            let path = &result.path;
            let origins = path.len().max(2) - 1;
            for start in 0..origins {
                self.route_cache
                    .entry((path[start], key))
                    .or_insert_with(|| CachedRoute { path: Arc::clone(path), start });
            }
        }
        result
    }

    fn lookup_walk(
        &mut self,
        from: Id,
        key: Id,
        repaired: &mut bool,
    ) -> Result<LookupResult, DhtError> {
        if !self.nodes.contains_key(&from) {
            return Err(DhtError::UnknownNode { id: from });
        }
        let mut path = Vec::with_capacity(PATH_CAPACITY);
        path.push(from);
        let mut current = from;
        for _ in 0..self.max_hops {
            let node = self.nodes.get(&current).expect("current node is live");
            let successor = node.successor();

            // Am I (or my successor) responsible for the key?
            if current == successor || key.in_open_closed_interval(current, successor) {
                let owner = if self.nodes.contains_key(&successor) {
                    successor
                } else {
                    // Successor died and has not been repaired yet: fall back
                    // to the ground truth after repairing the pointer.
                    *repaired = true;
                    self.nodes.get_mut(&current).expect("live").forget(successor);
                    self.successor_of(key)?
                };
                if owner != current {
                    path.push(owner);
                }
                return Ok(LookupResult::from_walk(path));
            }

            // Forward to the closest preceding live node.
            let mut next = None;
            loop {
                let candidate = self
                    .nodes
                    .get(&current)
                    .expect("current node is live")
                    .closest_preceding_node(key);
                match candidate {
                    Some(c) if self.nodes.contains_key(&c) => {
                        next = Some(c);
                        break;
                    }
                    Some(dead) => {
                        // Detected a failure: repair and retry.
                        *repaired = true;
                        self.nodes.get_mut(&current).expect("live").forget(dead);
                    }
                    None => break,
                }
            }
            let next = match next {
                Some(n) if n != current => n,
                _ => {
                    // No useful finger: fall back to the successor.
                    let succ = self.nodes.get(&current).expect("live").successor();
                    if succ == current || !self.nodes.contains_key(&succ) {
                        return Err(DhtError::LookupStuck { at: current, key });
                    }
                    succ
                }
            };
            path.push(next);
            current = next;
            // Splice onto a memoized tail: a cached entry for the node just
            // reached is exactly the remainder of this walk (routing is
            // memoryless), so the concatenation equals the full cold walk.
            // Skipped once a repair happened — the cache is stale then and
            // is about to be dropped wholesale.
            if !*repaired {
                if let Some(hit) = self.route_cache.get(&(current, key)) {
                    path.extend_from_slice(&hit.path[hit.start + 1..]);
                    return Ok(LookupResult::from_walk(path));
                }
            }
        }
        Err(DhtError::LookupStuck { at: current, key })
    }

    /// Routes a lookup for `key` starting at node `from` **without mutating
    /// any routing state** — the shared-reference twin of
    /// [`lookup`](Self::lookup), used by the sharded runtime where many
    /// worker threads route concurrently over one ring.
    ///
    /// On a fully stabilized ring (no dead pointers) the walk, path and
    /// owner are identical to [`lookup`](Self::lookup) — this is the only
    /// regime the engine drains in, since membership changes re-stabilize
    /// the ring first. When a dead pointer *is* encountered, the walk skips
    /// it (modelling timeout-and-retry) but, unlike the `&mut` version,
    /// leaves the repair to the next stabilization round.
    pub fn lookup_stable(&self, from: Id, key: Id) -> Result<LookupResult, DhtError> {
        if !self.nodes.contains_key(&from) {
            return Err(DhtError::UnknownNode { id: from });
        }
        let mut path = Vec::with_capacity(PATH_CAPACITY);
        path.push(from);
        let mut current = from;
        for _ in 0..self.max_hops {
            let node = self.nodes.get(&current).expect("current node is live");
            let successor = node.successor();

            if current == successor || key.in_open_closed_interval(current, successor) {
                let owner = if self.nodes.contains_key(&successor) {
                    successor
                } else {
                    // Successor died and has not been repaired yet: fall
                    // back to the ground truth (without repairing).
                    self.successor_of(key)?
                };
                if owner != current {
                    path.push(owner);
                }
                return Ok(LookupResult::from_walk(path));
            }

            // Forward to the closest preceding *live* node, skipping (but
            // not repairing) dead fingers.
            let next = node
                .closest_preceding_live_node(key, |c| self.nodes.contains_key(&c))
                .filter(|n| *n != current)
                .or_else(|| {
                    let succ = node.successor();
                    (succ != current && self.nodes.contains_key(&succ)).then_some(succ)
                });
            let Some(next) = next else {
                return Err(DhtError::LookupStuck { at: current, key });
            };
            path.push(next);
            current = next;
        }
        Err(DhtError::LookupStuck { at: current, key })
    }

    /// Moves a node from `old_id` to `new_id` on the ring (identifier
    /// movement, the load-balancing primitive of Karger & Ruhl used in the
    /// paper's Figure 9 experiment). The node leaves gracefully and re-joins
    /// at its new position.
    pub fn move_node(&mut self, old_id: Id, new_id: Id) -> Result<(), DhtError> {
        if !self.nodes.contains_key(&old_id) {
            return Err(DhtError::UnknownNode { id: old_id });
        }
        if self.nodes.contains_key(&new_id) {
            return Err(DhtError::NodeExists { id: new_id });
        }
        self.leave(old_id)?;
        self.join(new_id)?;
        Ok(())
    }

    /// Average lookup path length measured over `samples` random keys
    /// starting from the first node (diagnostic helper used in tests and
    /// benches).
    pub fn average_lookup_hops(&mut self, samples: u64) -> f64 {
        let Some(from) = self.nodes.keys().next().copied() else { return 0.0 };
        let mut total = 0usize;
        for i in 0..samples {
            let key = Id::hash_key(&format!("sample-key-{i}"));
            if let Ok(res) = self.lookup(from, key) {
                total += res.hops();
            }
        }
        total as f64 / samples.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize) -> (ChordNetwork, Vec<Id>) {
        let mut net = ChordNetwork::new(4);
        let ids: Vec<Id> = (0..n).map(|i| Id::hash_key(&format!("node-{i}"))).collect();
        for id in &ids {
            net.join(*id).unwrap();
        }
        net.full_stabilize();
        (net, ids)
    }

    #[test]
    fn successor_of_matches_sorted_order() {
        let (net, _) = build(16);
        let sorted: Vec<Id> = net.node_ids().collect();
        // A key equal to a node id is owned by that node.
        assert_eq!(net.successor_of(sorted[3]).unwrap(), sorted[3]);
        // A key just after a node is owned by the next node.
        assert_eq!(net.successor_of(Id(sorted[3].0 + 1)).unwrap(), sorted[4]);
        // Wrap-around: a key after the last node is owned by the first.
        assert_eq!(net.successor_of(Id(sorted.last().unwrap().0 + 1)).unwrap(), sorted[0]);
    }

    #[test]
    fn lookup_finds_correct_owner_from_every_node() {
        let (mut net, ids) = build(32);
        for i in 0..50 {
            let key = Id::hash_key(&format!("key-{i}"));
            let expected = net.successor_of(key).unwrap();
            for &from in ids.iter().step_by(7) {
                let result = net.lookup(from, key).unwrap();
                assert_eq!(result.owner, expected);
                assert_eq!(result.path().first(), Some(&from));
                assert_eq!(result.path().last(), Some(&expected));
                assert_eq!(result.hops(), result.path().len() - 1);
            }
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let (mut net, _) = build(256);
        let avg = net.average_lookup_hops(200);
        // log2(256) = 8; allow a generous margin but rule out linear scans.
        assert!(avg <= 16.0, "average hops {avg} too high");
        assert!(avg >= 1.0, "average hops {avg} suspiciously low");
    }

    #[test]
    fn join_duplicate_is_rejected() {
        let (mut net, ids) = build(4);
        assert!(matches!(net.join(ids[0]), Err(DhtError::NodeExists { .. })));
    }

    #[test]
    fn leave_rewires_neighbours() {
        let (mut net, _) = build(16);
        let sorted: Vec<Id> = net.node_ids().collect();
        let victim = sorted[5];
        net.leave(victim).unwrap();
        assert!(!net.contains(victim));
        // The predecessor's successor skips the departed node.
        assert_eq!(net.node(sorted[4]).unwrap().successor(), sorted[6]);
        // Keys previously owned by the victim now belong to its successor.
        assert_eq!(net.successor_of(victim).unwrap(), sorted[6]);
    }

    #[test]
    fn lookups_survive_failures_after_stabilization() {
        let (mut net, ids) = build(64);
        // Crash 8 nodes without warning.
        for id in ids.iter().skip(3).step_by(8).take(8).copied().collect::<Vec<_>>() {
            net.fail(id).unwrap();
        }
        // A few stabilization rounds repair the ring.
        for _ in 0..(ID_BITS as usize) {
            net.stabilize_round();
        }
        for i in 0..30 {
            let key = Id::hash_key(&format!("post-failure-{i}"));
            let from = net.node_ids().next().unwrap();
            let result = net.lookup(from, key).unwrap();
            assert_eq!(result.owner, net.successor_of(key).unwrap());
        }
    }

    #[test]
    fn lookups_survive_failures_even_before_stabilization() {
        let (mut net, ids) = build(64);
        for id in ids.iter().take(4).copied().collect::<Vec<_>>() {
            net.fail(id).unwrap();
        }
        let from = net.node_ids().next().unwrap();
        for i in 0..20 {
            let key = Id::hash_key(&format!("eager-{i}"));
            let result = net.lookup(from, key).unwrap();
            assert_eq!(result.owner, net.successor_of(key).unwrap());
        }
    }

    #[test]
    fn stabilize_rounds_converge_to_full_stabilize() {
        let mut net = ChordNetwork::new(4);
        let ids: Vec<Id> = (0..32).map(|i| Id::hash_key(&format!("conv-{i}"))).collect();
        for id in &ids {
            net.join(*id).unwrap();
        }
        // Without full_stabilize, run plenty of protocol rounds.
        for _ in 0..(2 * ID_BITS as usize) {
            net.stabilize_round();
        }
        let mut reference = net.clone();
        reference.full_stabilize();
        for &id in &ids {
            assert_eq!(
                net.node(id).unwrap().successor(),
                reference.node(id).unwrap().successor(),
                "successor of {id} not converged"
            );
        }
        // Lookups are correct too.
        for i in 0..20 {
            let key = Id::hash_key(&format!("conv-key-{i}"));
            assert_eq!(net.lookup(ids[0], key).unwrap().owner, net.successor_of(key).unwrap());
        }
    }

    #[test]
    fn move_node_changes_ownership() {
        let (mut net, _) = build(8);
        let sorted: Vec<Id> = net.node_ids().collect();
        // Move node sorted[0] to just before sorted[4] so it takes over part
        // of sorted[4]'s arc.
        let new_id = Id(sorted[4].0 - 1);
        net.move_node(sorted[0], new_id).unwrap();
        net.full_stabilize();
        assert!(!net.contains(sorted[0]));
        assert!(net.contains(new_id));
        assert_eq!(net.successor_of(new_id).unwrap(), new_id);
        // Keys formerly owned by sorted[0] fall to its old successor now.
        assert_eq!(net.successor_of(sorted[0]).unwrap(), sorted[1]);
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let mut net = ChordNetwork::new(4);
        let id = Id::hash_key("only");
        net.join(id).unwrap();
        net.full_stabilize();
        assert_eq!(net.successor_of(Id(0)).unwrap(), id);
        let res = net.lookup(id, Id(12345)).unwrap();
        assert_eq!(res.owner, id);
        assert_eq!(res.hops(), 0);
    }

    #[test]
    fn empty_ring_errors() {
        let net = ChordNetwork::new(4);
        assert!(matches!(net.successor_of(Id(1)), Err(DhtError::EmptyRing)));
        assert!(net.is_empty());
    }

    #[test]
    fn lookup_from_unknown_node_errors() {
        let (mut net, _) = build(4);
        let foreign = Id::hash_key("not-a-member");
        assert!(matches!(net.lookup(foreign, Id(0)), Err(DhtError::UnknownNode { .. })));
    }
}
