//! Error types for the Chord simulation.

use crate::Id;
use std::fmt;

/// Errors raised by the Chord network simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhtError {
    /// A node with the given identifier is already part of the ring.
    NodeExists {
        /// The duplicate identifier.
        id: Id,
    },
    /// The referenced node is not part of the ring.
    UnknownNode {
        /// The missing identifier.
        id: Id,
    },
    /// An operation requires a non-empty ring.
    EmptyRing,
    /// A lookup could not make progress (can only happen if routing state is
    /// badly broken, e.g. after massive simultaneous failures without
    /// stabilization).
    LookupStuck {
        /// The node at which the lookup got stuck.
        at: Id,
        /// The key being looked up.
        key: Id,
    },
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::NodeExists { id } => write!(f, "node {id} already exists in the ring"),
            DhtError::UnknownNode { id } => write!(f, "node {id} is not part of the ring"),
            DhtError::EmptyRing => write!(f, "the ring has no nodes"),
            DhtError::LookupStuck { at, key } => {
                write!(f, "lookup for key {key} made no progress at node {at}")
            }
        }
    }
}

impl std::error::Error for DhtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let err = DhtError::UnknownNode { id: Id(0xabc) };
        assert!(err.to_string().contains("0000000000000abc"));
    }
}
