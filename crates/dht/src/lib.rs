//! Chord DHT simulation for the RJoin reproduction.
//!
//! RJoin (EDBT 2008) runs on top of a DHT and only relies on the standard
//! `lookup` API; the paper uses Chord for its examples and experiments. This
//! crate provides a faithful, deterministic, single-process simulation of a
//! Chord network:
//!
//! * [`Id`] — 64-bit identifiers on the Chord ring, produced by hashing keys
//!   with a from-scratch [SHA-1 implementation](sha1),
//! * [`ChordNode`] — per-node routing state: successor list, predecessor and
//!   finger table,
//! * [`ChordNetwork`] — the ring itself: join/leave/fail, periodic
//!   stabilization, iterative finger-table lookups with per-hop tracing
//!   (used by the network layer to account routed messages), and
//! * [`balance`] — the identifier-movement load-balancing technique of
//!   Karger & Ruhl used in the paper's Figure 9 experiment.
//!
//! # Example
//!
//! ```
//! use rjoin_dht::{ChordNetwork, Id};
//!
//! let mut net = ChordNetwork::new(8);
//! let ids: Vec<Id> = (0..32).map(|i| Id::hash_key(&format!("node-{i}"))).collect();
//! for id in &ids {
//!     net.join(*id).unwrap();
//! }
//! net.full_stabilize();
//!
//! let key = Id::hash_key("R+A+i:17");
//! let result = net.lookup(ids[0], key).unwrap();
//! assert_eq!(result.owner, net.successor_of(key).unwrap());
//! assert!(result.hops() <= 32);
//! ```

pub mod balance;
mod error;
mod id;
mod key;
mod node;
mod ring;
pub mod sha1;

pub use error::DhtError;
pub use id::Id;
pub use key::{mix64, HashedKey, RingBuildHasher, RingHasher, RingMap, RingSet};
pub use node::{ChordNode, FingerTable, SUCCESSOR_LIST_LEN};
pub use ring::{ChordNetwork, LookupResult};

/// Number of bits in ring identifiers (`m` in the Chord paper).
pub const ID_BITS: u32 = 64;
