//! Transport failure paths: what the wire does when peers are unreachable,
//! hang up mid-frame, or send garbage — and the one failure that must
//! *not* happen: losing answers across a graceful leave.

use rjoin_core::{traffic_class, EngineConfig, RJoinMessage};
use rjoin_dht::{DhtError, Id};
use rjoin_net::Transport;
use rjoin_query::parse_query;
use rjoin_relation::{Catalog, Schema, Tuple, Value};
use rjoin_transport::{
    Cluster, ClusterConfig, ClusterView, Member, NodeProcess, ServiceClock, ServiceNet,
    TransportError,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(Schema::new("r", ["a", "b"]).expect("schema")).expect("register");
    catalog.register(Schema::new("s", ["b", "c"]).expect("schema")).expect("register");
    catalog
}

fn sample_message() -> RJoinMessage {
    let tuple = Arc::new(Tuple::new("r", vec![Value::from("x"), Value::from("y")], 1));
    let key = rjoin_query::IndexKey::attribute("r", "a");
    RJoinMessage::NewTuple {
        tuple,
        key: key.hashed(),
        level: key.level(),
        publisher: Id::hash_key("test-publisher"),
    }
}

/// Polls an atomic counter until it reaches `want` (reader threads race the
/// assertion) or a generous deadline passes.
fn wait_for(counter: &std::sync::atomic::AtomicU64, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let got = counter.load(Ordering::Relaxed);
        if got >= want || Instant::now() >= deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A routed send to an owner nobody listens for fails with the routing
/// layer's error — and the transport keeps the connection-level detail.
#[test]
fn dispatch_to_an_unreachable_owner_is_a_routing_error() {
    // Bind, note the address, drop the listener: connection refused.
    let vacant = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let view =
        ClusterView::new(vec![Member { id: Id(42), label: "dead".into(), addr: vacant }], vec![]);
    let clock = Arc::new(ServiceClock::default());
    let mut net = ServiceNet::new(Id::hash_key("client"), view, clock, 1);

    let err = net
        .send(net.self_id, Id(40), sample_message(), traffic_class::TUPLE)
        .expect_err("nobody is listening");
    assert_eq!(err, DhtError::UnknownNode { id: Id(42) });
    match net.last_error {
        Some(TransportError::Connect { ref addr, .. }) => {
            assert!(addr.contains("127.0.0.1"), "kept the dialled address: {addr}")
        }
        ref other => panic!("expected the Connect detail, got {other:?}"),
    }
    assert_eq!(net.sent, 0, "a failed send must not count toward quiescence");
}

/// A peer that hangs up mid-frame is classified as truncation, counted,
/// and never crashes the node.
#[test]
fn peer_hangup_mid_frame_counts_as_truncated() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let node = NodeProcess::spawn(listener, "truncation-target", None).expect("spawn");

    let mut conn = TcpStream::connect(addr).expect("connect");
    // A frame header promising 100 bytes, followed by only 4 — then hangup.
    conn.write_all(&100u32.to_le_bytes()).expect("prefix");
    conn.write_all(b"some").expect("partial payload");
    drop(conn);

    assert_eq!(wait_for(&node.stats().truncated_frames, 1), 1);
    assert_eq!(node.stats().malformed_frames.load(Ordering::Relaxed), 0);
}

/// A complete frame whose payload is garbage is classified as malformed;
/// the stream is dropped (resynchronizing inside a byte stream is
/// hopeless) but the node lives on and serves new connections.
#[test]
fn garbage_frames_count_as_malformed_and_the_node_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let node = NodeProcess::spawn(listener, "garbage-target", None).expect("spawn");

    let payload = b"!!not json!!";
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(&(payload.len() as u32).to_le_bytes()).expect("prefix");
    conn.write_all(payload).expect("payload");
    assert_eq!(wait_for(&node.stats().malformed_frames, 1), 1);

    // The node still accepts connections after dropping the bad stream.
    let mut again = TcpStream::connect(addr).expect("reconnect");
    again.write_all(&1u32.to_le_bytes()).expect("prefix");
    again.write_all(b"x").expect("payload");
    assert_eq!(wait_for(&node.stats().malformed_frames, 2), 2);
    assert_eq!(node.stats().truncated_frames.load(Ordering::Relaxed), 0);
}

/// Graceful leave must not lose answers: state stored before the leave
/// (a standing query and window tuples) is drained to the surviving
/// owners, and tuples published *after* the leave still join against it.
#[test]
fn graceful_leave_drains_state_without_losing_answers() {
    let config = EngineConfig::default();
    let mut cluster =
        Cluster::launch(config, test_catalog(), 4, ClusterConfig::default()).expect("launch");
    let query = parse_query("SELECT r.a, s.c FROM r, s WHERE r.b = s.b").expect("parse");
    let qid = cluster.submit_query(query).expect("submit");
    cluster.settle().expect("settle after submit");

    // Store r-tuples, then shrink the ring node by node down to one: every
    // leave re-homes the leaver's whole state (standing queries included).
    for (i, b) in ["k0", "k1", "k2", "k3"].iter().enumerate() {
        let t =
            Tuple::new("r", vec![Value::from(format!("row{i}")), Value::from(*b)], 1 + i as u64);
        cluster.publish_tuple(t).expect("publish r");
    }
    cluster.settle().expect("settle after r wave");

    let mut total_moved = 0;
    while cluster.node_ids().len() > 1 {
        let leaver = *cluster.node_ids().last().expect("non-empty ring");
        total_moved += cluster.leave_node(leaver).expect("graceful leave");
    }
    assert!(total_moved > 0, "shrinking to one node must re-home stored state");

    // Matching s-tuples published after the churn: every pre-leave r-tuple
    // must still be found by the survivor.
    for (i, b) in ["k0", "k1", "k2", "k3"].iter().enumerate() {
        let t = Tuple::new("s", vec![Value::from(*b), Value::from(format!("c{i}"))], 10 + i as u64);
        cluster.publish_tuple(t).expect("publish s");
    }
    cluster.settle().expect("settle after s wave");

    let mut rows = cluster.rows_for(qid);
    rows.sort();
    let expected: Vec<Vec<Value>> = (0..4)
        .map(|i| vec![Value::from(format!("row{i}")), Value::from(format!("c{i}"))])
        .collect();
    assert_eq!(rows, expected, "answers lost or duplicated across graceful leaves");
    cluster.shutdown();
}

/// Graceful join re-homes buckets to the newcomer and the pipeline keeps
/// producing the right answers afterwards.
#[test]
fn graceful_join_rehomes_and_keeps_answering() {
    let config = EngineConfig::default();
    let mut cluster =
        Cluster::launch(config, test_catalog(), 2, ClusterConfig::default()).expect("launch");
    let query = parse_query("SELECT r.a, s.c FROM r, s WHERE r.b = s.b").expect("parse");
    let qid = cluster.submit_query(query).expect("submit");
    cluster.settle().expect("settle after submit");

    for i in 0..6u64 {
        let t = Tuple::new(
            "r",
            vec![Value::from(format!("row{i}")), Value::from(format!("k{i}"))],
            1 + i,
        );
        cluster.publish_tuple(t).expect("publish r");
    }
    cluster.settle().expect("settle after r wave");

    for _ in 0..3 {
        cluster.join_node().expect("graceful join");
    }
    assert_eq!(cluster.node_ids().len(), 5);

    for i in 0..6u64 {
        let t = Tuple::new(
            "s",
            vec![Value::from(format!("k{i}")), Value::from(format!("c{i}"))],
            20 + i,
        );
        cluster.publish_tuple(t).expect("publish s");
    }
    cluster.settle().expect("settle after s wave");

    let mut rows = cluster.rows_for(qid);
    rows.sort();
    let expected: Vec<Vec<Value>> = (0..6)
        .map(|i| vec![Value::from(format!("row{i}")), Value::from(format!("c{i}"))])
        .collect();
    assert_eq!(rows, expected, "answers lost or duplicated across graceful joins");
    cluster.shutdown();
}
