//! Length-prefixed message frames.
//!
//! The wire format is deliberately boring: a 4-byte little-endian payload
//! length followed by that many bytes of JSON (the workspace's serde
//! encoding of [`ServiceMessage`](crate::ServiceMessage)). TCP gives
//! per-connection FIFO and the prefix gives message boundaries; everything
//! else — ordering across connections, retransmission after a crash — is
//! the protocol's problem, not the frame layer's.
//!
//! [`read_frame`] distinguishes the three ways a stream can end:
//!
//! * clean EOF on a frame boundary → `Ok(None)` (the peer closed politely),
//! * EOF inside the prefix or payload → [`TransportError::Truncated`]
//!   (the peer died mid-frame),
//! * a complete frame that fails to parse →
//!   [`TransportError::Malformed`].

use crate::error::TransportError;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Sanity limit on a single frame's payload (64 MiB). A peer announcing
/// more is treated as corrupt rather than allocated for.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write, T: Serialize + ?Sized>(
    w: &mut W,
    msg: &T,
) -> Result<(), TransportError> {
    let payload = serde_json::to_string(msg).map_err(TransportError::Malformed)?;
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(TransportError::TooLarge { len: bytes.len() });
    }
    let len = (bytes.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. `Ok(None)` means the peer closed the
/// stream cleanly on a frame boundary.
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, TransportError> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Partial(got) => {
            return Err(TransportError::Truncated { expected: 4 - got, got })
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(TransportError::TooLarge { len });
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanEof => return Err(TransportError::Truncated { expected: len, got: 0 }),
        ReadOutcome::Partial(got) => {
            return Err(TransportError::Truncated { expected: len - got, got })
        }
    }
    let text = std::str::from_utf8(&payload).map_err(|_| {
        TransportError::Malformed(serde_json::Error("frame payload is not UTF-8".into()))
    })?;
    let msg = serde_json::from_str(text).map_err(TransportError::Malformed)?;
    Ok(Some(msg))
}

enum ReadOutcome {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte.
    CleanEof,
    /// EOF after this many bytes.
    Partial(usize),
}

/// Like `read_exact`, but reports *where* the stream ended instead of
/// collapsing everything into `UnexpectedEof`.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, TransportError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::Partial(filled)
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_message() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "forty-two").unwrap();
        let mut cur = Cursor::new(buf);
        let back: Option<String> = read_frame(&mut cur).unwrap();
        assert_eq!(back.as_deref(), Some("forty-two"));
        let end: Option<String> = read_frame(&mut cur).unwrap();
        assert!(end.is_none(), "a second read hits clean EOF");
    }

    #[test]
    fn truncated_payload_is_reported_with_missing_byte_count() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "forty-two").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame::<_, String>(&mut Cursor::new(buf)).unwrap_err();
        match err {
            TransportError::Truncated { expected: 3, got } => assert!(got > 0),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_prefix_is_reported() {
        let buf = vec![0x05, 0x00];
        let err = read_frame::<_, String>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TransportError::Truncated { expected: 2, got: 2 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let buf = (u32::MAX).to_le_bytes().to_vec();
        let err = read_frame::<_, String>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TransportError::TooLarge { .. }));
    }

    #[test]
    fn malformed_payload_is_distinguished_from_truncation() {
        let payload = b"not json";
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(payload);
        let err = read_frame::<_, String>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, TransportError::Malformed(_)));
    }
}
