//! The service clock: real wall time quantized into engine ticks.
//!
//! The simulated runtimes advance a virtual clock; a deployment has only
//! the wall. [`ServiceClock`] maps the wall onto the engine's `SimTime`
//! ticks and keeps it *hybrid*: the local reading is the maximum of the
//! elapsed wall ticks and the highest tick observed on any incoming
//! message or published tuple (a Lamport-style floor). The floor is what
//! keeps causality intact — a node whose wall lags still never handles a
//! delivery at a tick before the sender stamped it — and the wall
//! component is what drives delay and expiry deadlines forward in real
//! time even when no messages arrive.
//!
//! Ticks are deliberately coarse (the default is 100 ms): window joins and
//! ALTT retention are expressed in ticks, and a coarse tick keeps the
//! wall-clock drift accumulated over a run small relative to the window
//! sizes recorded scenarios use, so a replay over TCP sees the same
//! window admissions as the simulated oracle run.

use rjoin_net::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotone, hybrid wall/logical clock in engine ticks.
#[derive(Debug)]
pub struct ServiceClock {
    start: Instant,
    tick: Duration,
    floor: AtomicU64,
}

impl ServiceClock {
    /// Default tick length: coarse enough that a multi-second run drifts
    /// only a few tens of ticks.
    pub const DEFAULT_TICK: Duration = Duration::from_millis(100);

    /// Creates a clock reading 0 now, with the given tick length.
    pub fn new(tick: Duration) -> Self {
        let tick = if tick.is_zero() { Self::DEFAULT_TICK } else { tick };
        ServiceClock { start: Instant::now(), tick, floor: AtomicU64::new(0) }
    }

    /// The current tick: elapsed wall ticks, lifted to the highest tick
    /// observed so far.
    pub fn now(&self) -> SimTime {
        let wall = (self.start.elapsed().as_nanos() / self.tick.as_nanos().max(1)) as SimTime;
        wall.max(self.floor.load(Ordering::Acquire))
    }

    /// Observes a tick from the outside world (a message's delivery stamp,
    /// a tuple's publication time): the clock never reads below it again.
    pub fn observe(&self, t: SimTime) {
        self.floor.fetch_max(t, Ordering::AcqRel);
    }
}

impl Default for ServiceClock {
    fn default() -> Self {
        Self::new(Self::DEFAULT_TICK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_raises_the_floor_monotonically() {
        let clock = ServiceClock::new(Duration::from_secs(3600));
        assert_eq!(clock.now(), 0, "a fresh clock with a huge tick reads 0");
        clock.observe(42);
        assert_eq!(clock.now(), 42);
        clock.observe(7);
        assert_eq!(clock.now(), 42, "observing the past never rewinds");
    }
}
