//! A standalone RJoin node process.
//!
//! Usage: `rjoin_node <label> <listen-addr>`
//!
//! The process binds the listener and waits for a
//! [`ServiceMessage::Configure`](rjoin_transport::ServiceMessage::Configure)
//! frame carrying the engine configuration, the schema catalog and the
//! initial membership view; engine traffic arriving before it is stashed.
//! The label must match the member entry other processes route by (the
//! ring identifier is the label's hash). The process exits when a
//! `Shutdown` frame arrives.

use rjoin_transport::NodeProcess;
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(label), Some(addr)) = (args.next(), args.next()) else {
        eprintln!("usage: rjoin_node <label> <listen-addr>");
        return ExitCode::FAILURE;
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rjoin_node: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(bound) => println!("rjoin_node: {label} listening on {bound}"),
        Err(_) => println!("rjoin_node: {label} listening on {addr}"),
    }
    match NodeProcess::spawn(listener, &label, None) {
        Ok(process) => {
            process.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rjoin_node: spawn failed: {e}");
            ExitCode::FAILURE
        }
    }
}
