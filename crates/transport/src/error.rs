//! Errors of the networked transport.

use rjoin_core::EngineError;
use rjoin_dht::Id;
use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Everything that can go wrong between two RJoin processes.
///
/// Frame-level problems ([`Truncated`](TransportError::Truncated),
/// [`TooLarge`](TransportError::TooLarge),
/// [`Malformed`](TransportError::Malformed)) are distinguished from
/// connection-level ones ([`Connect`](TransportError::Connect),
/// [`Io`](TransportError::Io)) so failure-path tests — and operators — can
/// tell a peer that died mid-frame from one that was never reachable.
#[derive(Debug)]
pub enum TransportError {
    /// An established connection failed while reading or writing.
    Io(io::Error),
    /// A peer could not be connected to (e.g. connection refused).
    Connect {
        /// The address that was dialled.
        addr: String,
        /// The underlying socket error.
        source: io::Error,
    },
    /// The stream ended in the middle of a frame: the peer hung up after
    /// promising (or while sending) more bytes.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// A frame announced a length above the sanity limit.
    TooLarge {
        /// The announced payload length.
        len: usize,
    },
    /// A complete frame arrived but its payload was not a valid message.
    Malformed(serde_json::Error),
    /// No address is known for the peer (it is in neither the ring view nor
    /// the client list).
    UnknownPeer {
        /// The unresolvable identifier.
        id: Id,
    },
    /// A blocking cluster operation (settle, drain) did not finish in time.
    Timeout {
        /// What was being waited for.
        what: String,
    },
    /// An engine-level error surfaced through the service API.
    Engine(EngineError),
    /// An internal channel or worker thread went away.
    Disconnected,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "connection i/o error: {e}"),
            TransportError::Connect { addr, source } => {
                write!(f, "failed to connect to {addr}: {source}")
            }
            TransportError::Truncated { expected, got } => {
                write!(f, "peer hung up mid-frame: expected {expected} more bytes, got {got}")
            }
            TransportError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the sanity limit")
            }
            TransportError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
            TransportError::UnknownPeer { id } => write!(f, "no address known for peer {id}"),
            TransportError::Timeout { what } => write!(f, "timed out waiting for {what}"),
            TransportError::Engine(e) => write!(f, "engine error: {e}"),
            TransportError::Disconnected => write!(f, "internal worker or channel disconnected"),
        }
    }
}

impl StdError for TransportError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Connect { source, .. } => Some(source),
            TransportError::Malformed(e) => Some(e),
            TransportError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<EngineError> for TransportError {
    fn from(e: EngineError) -> Self {
        TransportError::Engine(e)
    }
}
