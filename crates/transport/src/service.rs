//! The service-facing cluster handle: a client process that launches node
//! processes over loopback TCP, dispatches queries and tuples through the
//! same pipeline the simulated engine uses, and collects answers.
//!
//! The handle plays the role the `RJoinEngine` driver plays for the
//! simulated transport: it owns the query-id sequence, validates
//! submissions against the catalog, and runs client-side dispatch
//! (Procedure 1 for tuples, the placement pipeline for queries) — but
//! every effect goes out as a TCP frame instead of a virtual-queue push.
//!
//! # Quiescence
//!
//! The simulator's `run_until_quiet` becomes [`Cluster::settle`]: a
//! conservation barrier over counted messages. Each node reports, via
//! `Ping`/`Pong`, how many counted frames it has sent and processed; the
//! network is quiescent exactly when
//!
//! ```text
//! client_sent + Σ node_sent == Σ node_processed + client_received
//! ```
//!
//! and the totals are *stable across two consecutive probe rounds* (a
//! single balanced round can race a frame that is buffered in a socket
//! but not yet counted on either side).
//!
//! # Scope
//!
//! Networked mode is pipeline-only: cyclic query shapes (which the
//! simulated engine places on a hypercube) and hot-key splitting (a
//! quiescent-point whole-network optimization) are rejected/disabled.

use crate::clock::ServiceClock;
use crate::error::TransportError;
use crate::frame::read_frame;
use crate::net::{NetEnv, ServiceNet};
use crate::node::{NodeBoot, NodeProcess, NodeStats};
use crate::view::{ClusterView, Member};
use crate::wire::ServiceMessage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_core::pipeline::dispatch_query_in;
use rjoin_core::split::SplitMap;
use rjoin_core::{
    traffic_class, AnswerLog, AnswerRecord, EngineConfig, EngineError, NodeId, PendingQuery,
    QueryId, RJoinMessage,
};
use rjoin_dht::Id;
use rjoin_net::Transport;
use rjoin_query::plan::{self, QueryShape};
use rjoin_query::{tuple_index_keys, JoinQuery, QueryError};
use rjoin_relation::{Catalog, Tuple, Value};
use std::collections::{HashMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Deployment parameters of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Tick length of every process clock.
    pub tick: Duration,
    /// How long [`Cluster::settle`] waits for the conservation equation to
    /// balance before giving up.
    pub settle_timeout: Duration,
    /// Label the client's ring identifier is hashed from.
    pub client_label: String,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tick: ServiceClock::DEFAULT_TICK,
            settle_timeout: Duration::from_secs(30),
            client_label: "rjoin-client".to_string(),
        }
    }
}

/// What the client's reader threads collect.
#[derive(Debug, Default)]
struct ClientInbox {
    answers: AnswerLog,
    distinct: HashSet<QueryId>,
    /// Counted frames received (the client side of the conservation
    /// equation).
    received: u64,
}

/// A running deployment: node processes over loopback TCP plus the client
/// endpoint submitting work and collecting answers.
pub struct Cluster {
    config: EngineConfig,
    catalog: Catalog,
    cluster_cfg: ClusterConfig,
    client_id: Id,
    net: ServiceNet,
    rng: StdRng,
    splits: SplitMap,
    nodes: HashMap<Id, NodeProcess>,
    node_seq: usize,
    inbox: Arc<Mutex<ClientInbox>>,
    pong_rx: Receiver<(u64, u64, u64)>,
    drain_rx: Receiver<u64>,
    next_query_seq: u64,
    next_token: u64,
    qids: Vec<QueryId>,
    /// Final counters of nodes that have left (their `sent`/`processed`
    /// would otherwise vanish from the conservation sums).
    departed_sent: u64,
    departed_processed: u64,
}

impl Cluster {
    /// Launches `n` node processes on loopback TCP plus the client
    /// endpoint. Node labels are `rjoin-node-{i}` — the same labels the
    /// simulated bootstrap hashes, so key ownership matches a simulated
    /// run over `n` nodes exactly.
    pub fn launch(
        config: EngineConfig,
        catalog: Catalog,
        n: usize,
        cluster_cfg: ClusterConfig,
    ) -> Result<Cluster, TransportError> {
        assert!(n > 0, "a cluster needs at least one node");
        // Bind every listener before building the view, so the view ships
        // with final addresses and no node races its own registration.
        let mut listeners = Vec::with_capacity(n);
        let mut members = Vec::with_capacity(n);
        for i in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let label = format!("rjoin-node-{i}");
            members.push(Member::new(&label, listener.local_addr()?.to_string()));
            listeners.push((listener, label));
        }
        let client_listener = TcpListener::bind("127.0.0.1:0")?;
        let client =
            Member::new(&cluster_cfg.client_label, client_listener.local_addr()?.to_string());
        let client_id = client.id;
        let view = ClusterView::new(members, vec![client]);

        let clock = Arc::new(ServiceClock::new(cluster_cfg.tick));
        let inbox = Arc::new(Mutex::new(ClientInbox::default()));
        let (pong_tx, pong_rx) = channel();
        let (drain_tx, drain_rx) = channel();
        spawn_client_acceptor(
            client_listener,
            Arc::clone(&inbox),
            Arc::clone(&clock),
            pong_tx,
            drain_tx,
        );

        let mut nodes = HashMap::new();
        for (listener, label) in listeners {
            let boot = NodeBoot {
                config: config.clone(),
                catalog: catalog.clone(),
                view: view.clone(),
                tick: cluster_cfg.tick,
            };
            let process = NodeProcess::spawn(listener, &label, Some(boot))?;
            nodes.insert(process.member().id, process);
        }

        let delay = config.network_delay.max(1);
        let net = ServiceNet::new(client_id, view, clock, delay);
        let rng = StdRng::seed_from_u64(config.seed ^ client_id.0);
        Ok(Cluster {
            config,
            catalog,
            cluster_cfg,
            client_id,
            net,
            rng,
            splits: SplitMap::new(),
            nodes,
            node_seq: n,
            inbox,
            pong_rx,
            drain_rx,
            next_query_seq: 0,
            next_token: 0,
            qids: Vec::new(),
            departed_sent: 0,
            departed_processed: 0,
        })
    }

    /// The client's ring identifier (owner of every submitted query id).
    pub fn client_id(&self) -> Id {
        self.client_id
    }

    /// Identifiers of the live ring members.
    pub fn node_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes.keys().map(|&id| NodeId(id)).collect();
        ids.sort();
        ids
    }

    /// The observable counters of one node process.
    pub fn node_stats(&self, id: impl Into<NodeId>) -> Option<Arc<NodeStats>> {
        self.nodes.get(&id.into().id()).map(|p| Arc::clone(p.stats()))
    }

    /// Query ids in submission order (the replay harness compares per-query
    /// answer sets by this index, since simulated and networked runs have
    /// different owners).
    pub fn query_ids(&self) -> &[QueryId] {
        &self.qids
    }

    /// Submits a continuous query from the client: validated, planned on
    /// the rewrite pipeline, and indexed in the network through the same
    /// dispatch code path the simulated engine runs.
    ///
    /// Cyclic join graphs are rejected with [`QueryError::CyclicShape`]:
    /// hypercube placement is a simulator-only plan in this release.
    pub fn submit_query(&mut self, query: JoinQuery) -> Result<QueryId, TransportError> {
        query.validate(&self.catalog).map_err(EngineError::from)?;
        let graph = plan::JoinGraph::build(&query);
        if !graph.classes.is_empty() && graph.shape() == QueryShape::Cyclic {
            return Err(EngineError::Query(QueryError::CyclicShape).into());
        }
        let id = QueryId { owner: self.client_id, seq: self.next_query_seq };
        self.next_query_seq += 1;
        if query.distinct() {
            self.inbox.lock().expect("client inbox").distinct.insert(id);
        }
        let pending = PendingQuery::input(id, self.client_id, self.net.clock.now(), query);
        let mut env =
            NetEnv { net: &mut self.net, rng: &mut self.rng, splits: &self.splits, state: None };
        dispatch_query_in(&mut env, &self.config, &self.catalog, self.client_id, pending, true)?;
        self.qids.push(id);
        Ok(id)
    }

    /// Publishes a tuple from the client: validated and indexed under every
    /// attribute-level and value-level key (Procedure 1). The tuple's
    /// publication time is observed by the client clock, so replayed
    /// scenarios keep their recorded timeline.
    pub fn publish_tuple(&mut self, tuple: Tuple) -> Result<(), TransportError> {
        self.catalog.validate_tuple(&tuple).map_err(EngineError::from)?;
        self.net.clock.observe(tuple.pub_time());
        let schema = self.catalog.require_schema(tuple.relation()).map_err(EngineError::from)?;
        let keys: Vec<_> = tuple_index_keys(&tuple, schema)
            .into_iter()
            .map(|key| {
                let level = key.level();
                (key.hashed(), level)
            })
            .collect();
        let tuple = Arc::new(tuple);
        for (key, level) in keys {
            let msg = RJoinMessage::NewTuple {
                tuple: Arc::clone(&tuple),
                key: key.clone(),
                level,
                publisher: self.client_id,
            };
            self.net
                .send(self.client_id, key.id(), msg, traffic_class::TUPLE)
                .map_err(EngineError::from)?;
        }
        Ok(())
    }

    /// Blocks until the deployment is quiescent: every counted frame that
    /// was sent has been processed, stable across two probe rounds. The
    /// networked analogue of the simulator's `run_until_quiet`.
    pub fn settle(&mut self) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.cluster_cfg.settle_timeout;
        let mut prev: Option<(u64, u64)> = None;
        loop {
            let (sent, processed) = self.probe(deadline)?;
            if sent == processed && prev == Some((sent, processed)) {
                return Ok(());
            }
            prev = Some((sent, processed));
            if Instant::now() >= deadline {
                return Err(TransportError::Timeout { what: "settle".to_string() });
            }
            thread::sleep(Duration::from_millis(5));
        }
    }

    /// One probe round: pings every live node and totals the conservation
    /// counters.
    fn probe(&mut self, deadline: Instant) -> Result<(u64, u64), TransportError> {
        let token = self.next_token;
        self.next_token += 1;
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for id in &ids {
            self.net
                .send_control(*id, &ServiceMessage::Ping { token, reply_to: self.client_id })?;
        }
        let mut sent = self.net.sent + self.departed_sent;
        let mut processed = self.departed_processed;
        let mut seen = 0usize;
        while seen < ids.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(TransportError::Timeout { what: "settle probe".to_string() });
            }
            match self.pong_rx.recv_timeout(left) {
                Ok((t, s, p)) if t == token => {
                    sent += s;
                    processed += p;
                    seen += 1;
                }
                Ok(_) => {} // stale pong from an earlier round
                Err(_) => return Err(TransportError::Timeout { what: "settle probe".to_string() }),
            }
        }
        processed += self.inbox.lock().expect("client inbox").received;
        Ok((sent, processed))
    }

    /// Adds a node to the deployment: settles, binds a listener, ships the
    /// new view to every member, and re-homes the buckets the new node now
    /// owns. Returns the new node's identifier.
    pub fn join_node(&mut self) -> Result<NodeId, TransportError> {
        self.settle()?;
        let label = format!("rjoin-node-{}", self.node_seq);
        self.node_seq += 1;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let member = Member::new(&label, listener.local_addr()?.to_string());
        let id = member.id;
        let mut view = self.net.view.clone();
        view.add_member(member);

        let boot = NodeBoot {
            config: self.config.clone(),
            catalog: self.catalog.clone(),
            view: view.clone(),
            tick: self.cluster_cfg.tick,
        };
        let process = NodeProcess::spawn(listener, &label, Some(boot))?;
        let old_ids: Vec<Id> = self.nodes.keys().copied().collect();
        self.nodes.insert(id, process);
        self.net.view = view.clone();
        for old in old_ids {
            self.net.send_control(old, &ServiceMessage::View { view: view.clone() })?;
            self.net.send_control(old, &ServiceMessage::Rehome)?;
        }
        self.settle()?;
        Ok(NodeId(id))
    }

    /// Gracefully removes a node: settles, ships the shrunk view to every
    /// member (including the leaver), has the leaver drain its entire state
    /// to the new owners, collects its final counters, and shuts it down.
    /// Returns the number of re-homed items. Answers must survive: the
    /// record/replay harness asserts set equality across leaves.
    pub fn leave_node(&mut self, id: impl Into<NodeId>) -> Result<u64, TransportError> {
        let id = id.into().id();
        if !self.nodes.contains_key(&id) {
            return Err(TransportError::UnknownPeer { id });
        }
        if self.nodes.len() == 1 {
            return Err(EngineError::from(rjoin_dht::DhtError::EmptyRing).into());
        }
        self.settle()?;
        let mut view = self.net.view.clone();
        view.remove_member(id);
        // The leaver gets the shrunk view too (so its drain routes around
        // itself), but stays addressable through the client's old view
        // until the handshake finishes.
        let all_ids: Vec<Id> = self.nodes.keys().copied().collect();
        for node in all_ids {
            self.net.send_control(node, &ServiceMessage::View { view: view.clone() })?;
        }
        self.net.send_control(id, &ServiceMessage::Drain { reply_to: self.client_id })?;
        let deadline = Instant::now() + self.cluster_cfg.settle_timeout;
        let moved = self
            .drain_rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
            .map_err(|_| TransportError::Timeout { what: "drain".to_string() })?;

        // Final counters: the leaver's sent/processed leave the live sums,
        // so they move to the departed baseline.
        let token = self.next_token;
        self.next_token += 1;
        self.net.send_control(id, &ServiceMessage::Ping { token, reply_to: self.client_id })?;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(TransportError::Timeout { what: "leave".to_string() });
            }
            match self.pong_rx.recv_timeout(left) {
                Ok((t, s, p)) if t == token => {
                    self.departed_sent += s;
                    self.departed_processed += p;
                    break;
                }
                Ok(_) => {}
                Err(_) => return Err(TransportError::Timeout { what: "leave".to_string() }),
            }
        }
        self.net.send_control(id, &ServiceMessage::Shutdown)?;
        self.net.view = view;
        self.net.links.disconnect(id);
        if let Some(process) = self.nodes.remove(&id) {
            process.join();
        }
        // The drained state is in flight as `Absorb` transfers; wait for
        // the new owners to take it.
        self.settle()?;
        Ok(moved)
    }

    /// A snapshot of the answers collected so far.
    pub fn answers(&self) -> AnswerLog {
        self.inbox.lock().expect("client inbox").answers.clone()
    }

    /// The rows delivered for one query.
    pub fn rows_for(&self, query: QueryId) -> Vec<Vec<Value>> {
        self.inbox.lock().expect("client inbox").answers.rows_for(query)
    }

    /// Shuts every node down and waits for their workers to exit.
    pub fn shutdown(mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for id in ids {
            let _ = self.net.send_control(id, &ServiceMessage::Shutdown);
        }
        for (_, process) in self.nodes.drain() {
            process.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        let ids: Vec<Id> = self.nodes.keys().copied().collect();
        for id in ids {
            let _ = self.net.send_control(id, &ServiceMessage::Shutdown);
        }
        for (_, process) in self.nodes.drain() {
            process.join();
        }
    }
}

/// The client's accept loop: one reader per inbound connection, feeding
/// the shared inbox and the pong/drain channels.
fn spawn_client_acceptor(
    listener: TcpListener,
    inbox: Arc<Mutex<ClientInbox>>,
    clock: Arc<ServiceClock>,
    pong_tx: Sender<(u64, u64, u64)>,
    drain_tx: Sender<u64>,
) {
    thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(conn) = conn else { continue };
            let inbox = Arc::clone(&inbox);
            let clock = Arc::clone(&clock);
            let pong_tx = pong_tx.clone();
            let drain_tx = drain_tx.clone();
            thread::spawn(move || read_client_connection(conn, inbox, clock, pong_tx, drain_tx));
        }
    });
}

fn read_client_connection(
    mut conn: TcpStream,
    inbox: Arc<Mutex<ClientInbox>>,
    clock: Arc<ServiceClock>,
    pong_tx: Sender<(u64, u64, u64)>,
    drain_tx: Sender<u64>,
) {
    let _ = conn.set_nodelay(true);
    while let Ok(Some(msg)) = read_frame::<_, ServiceMessage>(&mut conn) {
        match msg {
            ServiceMessage::Engine { at, msg } => {
                clock.observe(at);
                let mut inbox = inbox.lock().expect("client inbox");
                inbox.received += 1;
                if let RJoinMessage::Answer { query, row, produced_at } = msg {
                    let record = AnswerRecord { query, row, produced_at, received_at: clock.now() };
                    if inbox.distinct.contains(&query) {
                        inbox.answers.record_distinct(record);
                    } else {
                        inbox.answers.record(record);
                    }
                }
            }
            ServiceMessage::Pong { token, sent, processed } => {
                let _ = pong_tx.send((token, sent, processed));
            }
            ServiceMessage::DrainDone { moved } => {
                let _ = drain_tx.send(moved);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_relation::Schema;

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.register(Schema::new("r", ["a", "b"]).expect("schema")).expect("register");
        catalog.register(Schema::new("s", ["b", "c"]).expect("schema")).expect("register");
        catalog
    }

    #[test]
    fn a_two_way_join_produces_its_answer_over_loopback_tcp() {
        let config = EngineConfig::default();
        let mut cluster =
            Cluster::launch(config, catalog(), 4, ClusterConfig::default()).expect("launch");
        let query =
            rjoin_query::parse_query("SELECT r.a, s.c FROM r, s WHERE r.b = s.b").expect("parse");
        let qid = cluster.submit_query(query).expect("submit");
        cluster.settle().expect("settle after submit");

        let t1 = Tuple::new("r", vec![Value::from("x"), Value::from("k")], 1);
        let t2 = Tuple::new("s", vec![Value::from("k"), Value::from("y")], 2);
        cluster.publish_tuple(t1).expect("publish r");
        cluster.publish_tuple(t2).expect("publish s");
        cluster.settle().expect("settle after publish");

        let rows = cluster.rows_for(qid);
        assert_eq!(rows, vec![vec![Value::from("x"), Value::from("y")]]);
        cluster.shutdown();
    }
}
