//! The first real [`Transport`](rjoin_net::Transport): RJoin over TCP.
//!
//! Everything below the engine's [`Transport`](rjoin_net::Transport)
//! trait was simulated until
//! now — virtual queues, a virtual clock, one process. This crate lifts
//! the algorithm onto `std::net` TCP with no async runtime: length-prefixed
//! frames carry serde-encoded engine messages, one OS thread serves each
//! connection, and real wall clocks (quantized into engine ticks, with a
//! Lamport-style floor) replace virtual time.
//!
//! # Pieces
//!
//! - [`frame`]: the wire format — a 4-byte little-endian length prefix,
//!   then a JSON-encoded [`ServiceMessage`]; truncation and garbage are
//!   classified, not panicked on.
//! - [`ServiceClock`]: hybrid wall/logical ticks.
//! - [`ClusterView`]: full-membership successor routing — the same
//!   ownership function the simulated Chord ring converges to, proven
//!   against it in tests.
//! - [`ServiceNet`]: the [`Transport`](rjoin_net::Transport)
//!   implementation — per-peer FIFO, at-most-once, one-hop routing.
//! - [`NodeProcess`]: one node's `NodeState` and dispatch pipeline behind
//!   a TCP listener; threads in one process for tests, or the
//!   `rjoin_node` binary for one process per node.
//! - [`Cluster`]: the service-facing client — submits queries, publishes
//!   tuples, settles on a quiescence barrier, and drives graceful
//!   join/leave with state re-homing.
//!
//! Both the node workers and the client dispatch through
//! [`rjoin_core::pipeline`] — the *same* functions the simulated engine
//! runs — so the deterministic simulator doubles as an oracle: the
//! record/replay harness in the facade crate replays a simulated
//! scenario over loopback TCP and asserts per-query answer-set equality.

pub mod clock;
pub mod error;
pub mod frame;
pub mod net;
pub mod node;
pub mod peers;
pub mod service;
pub mod view;
pub mod wire;

pub use clock::ServiceClock;
pub use error::TransportError;
pub use net::{NetEnv, ServiceNet};
pub use node::{NodeBoot, NodeProcess, NodeStats};
pub use service::{Cluster, ClusterConfig};
pub use view::{ClusterView, Member};
pub use wire::{ServiceMessage, StateTransfer, WireQuery};
