//! The service protocol: everything that crosses a TCP connection.
//!
//! Engine messages ([`RJoinMessage`]) are wrapped in
//! [`ServiceMessage::Engine`] with their delivery stamp; around them sits
//! a small control plane — configuration, membership views, state
//! transfer for graceful churn, and the quiescence barrier the cluster
//! client's `settle` is built on.

use crate::view::ClusterView;
use rjoin_core::{
    DrainedAlttBucket, DrainedState, EngineConfig, PendingQuery, RJoinMessage, StoredQuery,
};
use rjoin_dht::{HashedKey, Id};
use rjoin_net::SimTime;
use rjoin_query::IndexLevel;
use rjoin_relation::{Catalog, Tuple};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One frame of the service protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServiceMessage {
    /// An engine message, stamped with the tick at which the sender's
    /// clock scheduled its delivery (sender clock + delay bound). The
    /// receiver observes the stamp before handling, so causality survives
    /// clock skew.
    Engine {
        /// Scheduled delivery tick.
        at: SimTime,
        /// The wrapped algorithm message.
        msg: RJoinMessage,
    },
    /// Bootstrap for a process started without parameters (the `rjoin_node`
    /// binary): the engine configuration, the schema catalog and the
    /// initial membership view.
    Configure {
        /// Engine configuration shared by every node.
        config: EngineConfig,
        /// The schema catalog.
        catalog: Catalog,
        /// The initial membership view.
        view: ClusterView,
    },
    /// A membership change: replace the routing view.
    View {
        /// The new view.
        view: ClusterView,
    },
    /// Passive state insertion: buckets re-homed to this node by churn.
    /// Absorbed state is *not* re-evaluated — re-sending stored queries as
    /// `Eval`s would duplicate answers.
    Absorb {
        /// The re-homed buckets.
        transfer: StateTransfer,
    },
    /// After a view change: drain every bucket the current view assigns to
    /// someone else and ship each share to its new owner.
    Rehome,
    /// Graceful leave: drain *all* state to the current owners (the leaver
    /// is already out of the shipped view), then confirm.
    Drain {
        /// Who to send [`ServiceMessage::DrainDone`] to.
        reply_to: Id,
    },
    /// Confirmation that a [`ServiceMessage::Drain`] finished.
    DrainDone {
        /// Number of re-homed items.
        moved: u64,
    },
    /// Quiescence probe: asks a node for its send/process counters.
    Ping {
        /// Echoed in the matching [`ServiceMessage::Pong`].
        token: u64,
        /// Who to send the reply to.
        reply_to: Id,
    },
    /// Reply to [`ServiceMessage::Ping`]: cumulative counted messages this
    /// node has sent and processed (engine messages and state transfers;
    /// control frames are not counted).
    Pong {
        /// The probe's token.
        token: u64,
        /// Counted messages sent.
        sent: u64,
        /// Counted messages processed.
        processed: u64,
    },
    /// Stop the worker loop after draining already-queued messages.
    Shutdown,
}

impl ServiceMessage {
    /// Whether this frame participates in the quiescence conservation
    /// equation (Σ sent == Σ processed): engine messages and state
    /// transfers do; pure control frames don't.
    pub fn is_counted(&self) -> bool {
        matches!(self, ServiceMessage::Engine { .. } | ServiceMessage::Absorb { .. })
    }
}

/// A stored query on the wire: the serializable identity of a
/// [`StoredQuery`]. Caches (compiled trigger programs, sub-join
/// fingerprints) and the `DISTINCT` duplicate filter are rebuilt at the
/// receiver — per-query answer *sets* are unaffected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireQuery {
    /// The query and its metadata.
    pub pending: PendingQuery,
    /// The interned key it was stored under.
    pub key: HashedKey,
    /// Attribute- or value-level placement of that key.
    pub level: IndexLevel,
}

/// A serializable [`DrainedState`]: the buckets churn re-homes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StateTransfer {
    /// Stored queries.
    pub queries: Vec<WireQuery>,
    /// Value-level tuple buckets, by key ring id.
    pub tuples: Vec<(u64, Vec<Arc<Tuple>>)>,
    /// ALTT buckets (tuple + retention deadline), by key ring id.
    pub altt: Vec<DrainedAlttBucket>,
}

impl StateTransfer {
    /// Serializable snapshot of drained state.
    pub fn from_drained(drained: DrainedState) -> Self {
        StateTransfer {
            queries: drained
                .queries
                .into_iter()
                .map(|sq| WireQuery { pending: sq.pending, key: sq.key, level: sq.level })
                .collect(),
            tuples: drained.tuples,
            altt: drained.altt,
        }
    }

    /// Rebuilds engine-side drained state (fresh caches and dedup filters).
    pub fn into_drained(self) -> DrainedState {
        DrainedState {
            queries: self
                .queries
                .into_iter()
                .map(|wq| StoredQuery::new(wq.pending, wq.key, wq.level))
                .collect(),
            tuples: self.tuples,
            altt: self.altt,
        }
    }

    /// Total number of transferred items.
    pub fn len(&self) -> usize {
        self.queries.len()
            + self.tuples.iter().map(|(_, b)| b.len()).sum::<usize>()
            + self.altt.iter().map(|(_, b)| b.len()).sum::<usize>()
    }

    /// Whether the transfer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
