//! Outbound connection cache.

use crate::error::TransportError;
use crate::frame::write_frame;
use crate::wire::ServiceMessage;
use rjoin_dht::Id;
use std::collections::HashMap;
use std::net::TcpStream;

/// One TCP connection per peer, dialled on first use and re-dialled once
/// per send after a write failure (a restarted peer picks up where it left
/// off; a dead one surfaces as [`TransportError::Connect`] or
/// [`TransportError::Io`]).
#[derive(Debug, Default)]
pub struct PeerLinks {
    conns: HashMap<Id, TcpStream>,
}

impl PeerLinks {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sends one frame to `id` at `addr`, connecting if no live connection
    /// is cached. A write failure on a cached connection drops it and
    /// retries once on a fresh dial.
    pub fn send_to(
        &mut self,
        id: Id,
        addr: &str,
        msg: &ServiceMessage,
    ) -> Result<(), TransportError> {
        if let Some(conn) = self.conns.get_mut(&id) {
            match write_frame(conn, msg) {
                Ok(()) => return Ok(()),
                Err(_) => {
                    // Stale connection (peer restarted or hung up): drop it
                    // and fall through to a fresh dial.
                    self.conns.remove(&id);
                }
            }
        }
        let mut conn = TcpStream::connect(addr)
            .map_err(|source| TransportError::Connect { addr: addr.to_string(), source })?;
        let _ = conn.set_nodelay(true);
        write_frame(&mut conn, msg)?;
        self.conns.insert(id, conn);
        Ok(())
    }

    /// Drops the cached connection to `id`, if any.
    pub fn disconnect(&mut self, id: Id) {
        self.conns.remove(&id);
    }

    /// Drops every cached connection (closing the write halves).
    pub fn close_all(&mut self) {
        self.conns.clear();
    }
}
