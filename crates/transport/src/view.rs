//! The replicated membership view a deployment routes by.
//!
//! The simulated runtimes resolve key ownership through Chord routing
//! state. A small deployment does not need overlay hops: every process
//! holds the full member list and resolves the successor locally — the
//! same ownership function (first member identifier at or clockwise after
//! the key), so a state snapshot re-homed under a view lands exactly where
//! the simulated engine would have put it, given the same node labels.
//!
//! The view also carries *clients*: addressable endpoints (query
//! submitters collecting answers) that are **not** ring members — keys are
//! never routed to them, but `sendDirect` can reach them.

use rjoin_dht::{DhtError, Id};
use rjoin_net::KeyRouter;
use serde::{Deserialize, Serialize};

/// One addressable process: its ring identifier, the label the identifier
/// was hashed from, and its socket address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Member {
    /// Ring identifier (`Id::hash_key(label)`).
    pub id: Id,
    /// The textual label the identifier derives from.
    pub label: String,
    /// The `host:port` address the process listens on.
    pub addr: String,
}

impl Member {
    /// A member whose identifier is derived from its label.
    pub fn new(label: impl Into<String>, addr: impl Into<String>) -> Self {
        let label = label.into();
        Member { id: Id::hash_key(&label), label, addr: addr.into() }
    }
}

/// A full-membership snapshot: ring members (sorted by identifier) plus
/// non-ring clients. Cheap to clone and to ship in `View` messages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterView {
    members: Vec<Member>,
    clients: Vec<Member>,
}

impl ClusterView {
    /// Builds a view, sorting ring members into identifier order.
    pub fn new(mut members: Vec<Member>, clients: Vec<Member>) -> Self {
        members.sort_by_key(|m| m.id);
        ClusterView { members, clients }
    }

    /// Re-establishes the sorted-members invariant after deserialization.
    pub fn normalize(&mut self) {
        self.members.sort_by_key(|m| m.id);
    }

    /// The ring members, in identifier order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The non-ring clients.
    pub fn clients(&self) -> &[Member] {
        &self.clients
    }

    /// Number of ring members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds (or replaces) a ring member, keeping identifier order.
    pub fn add_member(&mut self, member: Member) {
        self.members.retain(|m| m.id != member.id);
        self.members.push(member);
        self.normalize();
    }

    /// Removes a ring member by identifier. Returns the removed entry.
    pub fn remove_member(&mut self, id: Id) -> Option<Member> {
        let pos = self.members.iter().position(|m| m.id == id)?;
        Some(self.members.remove(pos))
    }

    /// Finds a ring member by label.
    pub fn member_by_label(&self, label: &str) -> Option<&Member> {
        self.members.iter().find(|m| m.label == label)
    }

    /// The address of any addressable process (ring member or client).
    pub fn addr_of(&self, id: Id) -> Option<&str> {
        self.members.iter().chain(self.clients.iter()).find(|m| m.id == id).map(|m| m.addr.as_str())
    }

    /// Successor resolution over the sorted member list: the first member
    /// whose identifier is at or clockwise after `key_id`, wrapping to the
    /// smallest identifier — the same ownership function the Chord ring
    /// converges to.
    pub fn successor_of(&self, key_id: Id) -> Result<Id, DhtError> {
        if self.members.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        let at = self.members.partition_point(|m| m.id < key_id);
        let member = self.members.get(at).unwrap_or(&self.members[0]);
        Ok(member.id)
    }
}

impl KeyRouter for ClusterView {
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError> {
        self.successor_of(key_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successor_matches_the_chord_ring_on_the_same_labels() {
        let labels: Vec<String> = (0..16).map(|i| format!("rjoin-node-{i}")).collect();
        let view = ClusterView::new(
            labels.iter().map(|l| Member::new(l.clone(), "127.0.0.1:0")).collect(),
            Vec::new(),
        );
        let mut ring = rjoin_dht::ChordNetwork::new(4);
        for label in &labels {
            ring.join(Id::hash_key(label)).unwrap();
        }
        ring.full_stabilize();
        for probe in 0..200u64 {
            let key = Id::hash_key(&format!("probe-{probe}"));
            assert_eq!(
                view.successor_of(key).unwrap(),
                ring.successor_of(key).unwrap(),
                "view and Chord ring must agree on ownership"
            );
        }
    }

    #[test]
    fn clients_are_addressable_but_never_own_keys() {
        let mut view = ClusterView::new(
            vec![Member::new("rjoin-node-0", "127.0.0.1:1")],
            vec![Member::new("rjoin-client", "127.0.0.1:2")],
        );
        let client = Id::hash_key("rjoin-client");
        assert_eq!(view.addr_of(client), Some("127.0.0.1:2"));
        assert_eq!(view.successor_of(client).unwrap(), Id::hash_key("rjoin-node-0"));
        view.remove_member(Id::hash_key("rjoin-node-0"));
        assert!(matches!(view.successor_of(client), Err(DhtError::EmptyRing)));
    }
}
