//! The TCP implementation of the engine's [`Transport`] trait, and the
//! [`EffectEnv`] both node workers and the cluster client dispatch through.
//!
//! # Guarantees (and non-guarantees)
//!
//! Unlike the simulated runtimes, [`ServiceNet`] promises only what TCP
//! promises: per-peer FIFO delivery and at-most-once semantics (a peer
//! that dies loses whatever was in flight to it). There is no global
//! delivery order — cross-node interleaving is whatever the scheduler
//! produces — which is exactly the nondeterminism the record/replay
//! harness in the facade crate exercises. Routing is one hop: the full
//! membership view resolves the owner locally
//! ([`ClusterView::successor_of`]), so a routed message costs one network
//! message, accounted as a single-hop path.

use crate::clock::ServiceClock;
use crate::error::TransportError;
use crate::peers::PeerLinks;
use crate::view::ClusterView;
use crate::wire::ServiceMessage;
use rand::rngs::StdRng;
use rjoin_core::pipeline::{choose_candidate, EffectEnv};
use rjoin_core::split::SplitMap;
use rjoin_core::{NodeState, PlacementStrategy, RJoinMessage, RicEntry};
use rjoin_dht::{DhtError, Id, LookupResult};
use rjoin_net::{account_route, KeyRouter, SimTime, TrafficClass, TrafficStats, Transport};
use rjoin_query::IndexKey;
use std::sync::Arc;

/// The networked transport of one process: a membership view to route by,
/// a connection cache to send through, a hybrid wall clock, and local
/// traffic/quiescence counters.
#[derive(Debug)]
pub struct ServiceNet {
    /// This process's identity (ring member or client).
    pub self_id: Id,
    /// The routing view. Replaced wholesale on `View` messages.
    pub view: ClusterView,
    /// This process's clock.
    pub clock: Arc<ServiceClock>,
    /// The delay bound δ in ticks, stamped onto scheduled deliveries.
    pub delay_ticks: SimTime,
    /// Outbound connections.
    pub links: PeerLinks,
    /// Local per-node traffic counters (the paper's cost model, accounted
    /// at the sender).
    pub traffic: TrafficStats,
    /// Engine messages successfully sent (the quiescence counter).
    pub sent: u64,
    /// Direct sends dropped because the peer was unreachable (answers lost
    /// to a dead client, exactly as in a real deployment).
    pub dropped_directs: u64,
    /// The most recent connection-level failure, kept with full detail
    /// because the [`Transport`] trait can only surface a [`DhtError`].
    pub last_error: Option<TransportError>,
}

impl ServiceNet {
    /// A transport for `self_id`, routing by `view`.
    pub fn new(
        self_id: Id,
        view: ClusterView,
        clock: Arc<ServiceClock>,
        delay_ticks: SimTime,
    ) -> Self {
        ServiceNet {
            self_id,
            view,
            clock,
            delay_ticks,
            links: PeerLinks::new(),
            traffic: TrafficStats::default(),
            sent: 0,
            dropped_directs: 0,
            last_error: None,
        }
    }

    /// Sends an uncounted control frame to an addressable process.
    pub fn send_control(&mut self, to: Id, msg: &ServiceMessage) -> Result<(), TransportError> {
        let addr = self.view.addr_of(to).ok_or(TransportError::UnknownPeer { id: to })?.to_string();
        self.links.send_to(to, &addr, msg)
    }

    /// Delivers one engine message to `to`, stamped for `at`. Counted.
    fn deliver(&mut self, to: Id, at: SimTime, msg: RJoinMessage) -> Result<(), TransportError> {
        let addr = self.view.addr_of(to).ok_or(TransportError::UnknownPeer { id: to })?.to_string();
        self.links.send_to(to, &addr, &ServiceMessage::Engine { at, msg })?;
        self.sent += 1;
        Ok(())
    }
}

impl KeyRouter for ServiceNet {
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError> {
        self.view.successor_of(key_id)
    }
}

impl Transport<RJoinMessage> for ServiceNet {
    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn delay(&self) -> SimTime {
        self.delay_ticks
    }

    fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: RJoinMessage,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let owner = self.view.successor_of(key_id)?;
        let at = self.clock.now() + self.delay_ticks;
        if let Err(e) = self.deliver(owner, at, msg) {
            self.last_error = Some(e);
            // The trait's error type is the routing layer's: an unreachable
            // owner is indistinguishable from a node that left the ring.
            return Err(DhtError::UnknownNode { id: owner });
        }
        let route = LookupResult::direct(from, owner);
        account_route(&mut self.traffic, route.path(), class);
        Ok(route)
    }

    fn send_direct(&mut self, from: Id, to: Id, msg: RJoinMessage, class: TrafficClass) {
        let at = self.clock.now() + self.delay_ticks;
        match self.deliver(to, at, msg) {
            Ok(()) => self.traffic.record_sent(from, class),
            Err(e) => {
                // `sendDirect` has no error channel (the simulated queues
                // cannot fail): the message is lost, as it would be to a
                // crashed peer, and the failure is kept for diagnostics.
                self.dropped_directs += 1;
                self.last_error = Some(e);
            }
        }
    }

    fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let owner = self.view.successor_of(key_id)?;
        let route = LookupResult::direct(from, owner);
        account_route(&mut self.traffic, route.path(), class);
        Ok(route)
    }

    fn charge_direct(&mut self, from: Id, class: TrafficClass) {
        self.traffic.record_sent(from, class);
    }
}

/// The [`EffectEnv`] of a networked process: placement dispatch over a
/// [`ServiceNet`].
///
/// RIC information is strictly local: a node answers rate queries about
/// keys *it* owns from its own tracker and treats every remote candidate
/// as rate 0 (no synchronous cross-node RIC exchange — placement quality
/// degrades gracefully, answer correctness is unaffected, which is the
/// property the record/replay harness checks). The cluster client runs the
/// same environment with no node state at all.
pub struct NetEnv<'a> {
    /// The transport to send through.
    pub net: &'a mut ServiceNet,
    /// Placement randomness.
    pub rng: &'a mut StdRng,
    /// Hot-key splits (always empty in networked mode: splitting is a
    /// quiescent-point simulator feature).
    pub splits: &'a SplitMap,
    /// The local node state, when dispatching from a ring member (`None`
    /// at the client).
    pub state: Option<&'a mut NodeState>,
}

impl EffectEnv for NetEnv<'_> {
    type Net = ServiceNet;

    fn net(&mut self) -> &mut ServiceNet {
        self.net
    }

    fn now(&self) -> SimTime {
        self.net.clock.now()
    }

    fn cached_ric(
        &self,
        node: Id,
        ring: u64,
        now: SimTime,
        validity: Option<SimTime>,
    ) -> Option<RicEntry> {
        match &self.state {
            Some(state) if state.id == node => state.cached_ric(ring, now, validity),
            _ => None,
        }
    }

    fn cache_ric(&mut self, node: Id, ring: u64, entry: RicEntry) {
        if let Some(state) = &mut self.state {
            if state.id == node {
                state.cache_ric(ring, entry);
            }
        }
    }

    fn observed_rate(&mut self, owner: Id, ring: u64, now: SimTime, window: SimTime) -> u64 {
        match &self.state {
            Some(state) if state.id == owner => state.ric().rate(ring, now, window),
            _ => 0,
        }
    }

    fn choose(
        &mut self,
        candidates: &[IndexKey],
        rates: &[u64],
        strategy: PlacementStrategy,
    ) -> usize {
        choose_candidate(candidates, rates, strategy, self.rng)
    }

    fn splits(&self) -> &SplitMap {
        self.splits
    }

    fn note_query_fanout(&mut self, _extra: u64) {}
}
