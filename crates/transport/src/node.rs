//! A node process: one node's [`NodeState`](rjoin_core::NodeState) and
//! dispatch pipeline behind a TCP listener.
//!
//! Threads in one process for tests (spawn many [`NodeProcess`]es on
//! loopback), or one per OS process for real deployments (the
//! `rjoin_node` binary wraps [`NodeProcess::spawn`] around a bootstrap
//! [`ServiceMessage::Configure`] frame).
//!
//! The structure mirrors the engine's drivers: per-connection reader
//! threads parse frames and feed one mpsc inbox; a single worker thread
//! owns the [`NodeState`](rjoin_core::NodeState) and runs the *same*
//! node-local and effect phases the simulated engine runs
//! ([`handle_node_msg`] + [`perform_actions_in`]), so
//! the algorithm cannot drift between modes. The serial inbox gives each
//! node a total arrival order — which is all the exactly-once machinery
//! needs; no cross-node order is assumed anywhere.

use crate::clock::ServiceClock;
use crate::error::TransportError;
use crate::frame::read_frame;
use crate::net::{NetEnv, ServiceNet};
use crate::view::{ClusterView, Member};
use crate::wire::{ServiceMessage, StateTransfer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rjoin_core::pipeline::{
    handle_node_msg, perform_actions_in, standalone_node_state, TickEffect,
};
use rjoin_core::split::SplitMap;
use rjoin_core::{DrainedState, EngineConfig, RJoinMessage};
use rjoin_dht::Id;
use rjoin_relation::Catalog;
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Observable counters of a node process, shared with the spawner so tests
/// and operators can see what the wire did.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Counted messages processed (engine messages + state transfers).
    pub processed: AtomicU64,
    /// Inbound streams that ended mid-frame (peer hangup).
    pub truncated_frames: AtomicU64,
    /// Inbound frames that parsed to garbage.
    pub malformed_frames: AtomicU64,
    /// Effect-phase dispatch errors (e.g. an unreachable peer while
    /// re-indexing a rewritten query).
    pub dispatch_errors: AtomicU64,
}

/// Bootstrap parameters for a node spawned fully configured (the
/// in-process path). A node spawned without them waits for a
/// [`ServiceMessage::Configure`] frame before processing engine traffic.
#[derive(Debug, Clone)]
pub struct NodeBoot {
    /// Engine configuration (shared by every node of a deployment).
    pub config: EngineConfig,
    /// The schema catalog.
    pub catalog: Catalog,
    /// The initial membership view.
    pub view: ClusterView,
    /// Tick length of the node's wall clock.
    pub tick: Duration,
}

/// A running node process (listener + reader threads + worker thread).
#[derive(Debug)]
pub struct NodeProcess {
    member: Member,
    stats: Arc<NodeStats>,
    worker: Option<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
}

impl NodeProcess {
    /// Spawns a node behind an already-bound listener. With `boot` the node
    /// is ready immediately; without, it stashes traffic until a
    /// `Configure` frame arrives (the `rjoin_node` binary's path).
    pub fn spawn(
        listener: TcpListener,
        label: &str,
        boot: Option<NodeBoot>,
    ) -> io::Result<NodeProcess> {
        let member = Member::new(label, listener.local_addr()?.to_string());
        let stats = Arc::new(NodeStats::default());
        let stopping = Arc::new(AtomicBool::new(false));
        let (tx, rx) = channel::<ServiceMessage>();

        spawn_acceptor(listener, tx, Arc::clone(&stats), Arc::clone(&stopping));

        let worker_member = member.clone();
        let worker_stats = Arc::clone(&stats);
        let worker_stopping = Arc::clone(&stopping);
        let worker = thread::Builder::new()
            .name(format!("rjoin-node-worker-{label}"))
            .spawn(move || run_worker(worker_member, boot, rx, worker_stats, worker_stopping))?;

        Ok(NodeProcess { member, stats, worker: Some(worker), stopping })
    }

    /// This node's identity and address.
    pub fn member(&self) -> &Member {
        &self.member
    }

    /// The node's observable counters.
    pub fn stats(&self) -> &Arc<NodeStats> {
        &self.stats
    }

    /// Waits for the worker to exit (after a `Shutdown` frame was
    /// delivered). Reader threads die with their connections.
    pub fn join(mut self) {
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for NodeProcess {
    fn drop(&mut self) {
        self.stopping.store(true, Ordering::Release);
        // Wake a blocked acceptor so its thread can observe the flag.
        let _ = TcpStream::connect(&self.member.addr);
    }
}

/// Accept loop: one reader thread per inbound connection.
fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<ServiceMessage>,
    stats: Arc<NodeStats>,
    stopping: Arc<AtomicBool>,
) {
    thread::spawn(move || {
        for conn in listener.incoming() {
            if stopping.load(Ordering::Acquire) {
                break;
            }
            let Ok(conn) = conn else { continue };
            let tx = tx.clone();
            let stats = Arc::clone(&stats);
            thread::spawn(move || read_connection(conn, tx, stats));
        }
    });
}

/// Drains one inbound connection into the worker inbox, classifying how
/// the stream ends.
fn read_connection(mut conn: TcpStream, tx: Sender<ServiceMessage>, stats: Arc<NodeStats>) {
    let _ = conn.set_nodelay(true);
    loop {
        match read_frame::<_, ServiceMessage>(&mut conn) {
            Ok(Some(msg)) => {
                if tx.send(msg).is_err() {
                    return; // worker gone: shutdown
                }
            }
            Ok(None) => return, // clean hangup on a frame boundary
            Err(TransportError::Truncated { .. }) => {
                stats.truncated_frames.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(TransportError::Malformed(_) | TransportError::TooLarge { .. }) => {
                stats.malformed_frames.fetch_add(1, Ordering::Relaxed);
                return; // resynchronizing inside a byte stream is hopeless
            }
            Err(_) => return,
        }
    }
}

/// The configured half of a worker: everything that needs `Configure`.
struct NodeRuntime {
    config: EngineConfig,
    catalog: Catalog,
    state: rjoin_core::NodeState,
    net: ServiceNet,
    rng: StdRng,
    splits: SplitMap,
    /// Counted sends beyond the transport's own (Absorb transfers).
    extra_sent: u64,
}

impl NodeRuntime {
    fn new(id: Id, boot: NodeBoot) -> Self {
        let clock = Arc::new(ServiceClock::new(boot.tick));
        let net = ServiceNet::new(id, boot.view, clock, boot.config.network_delay.max(1));
        let rng = StdRng::seed_from_u64(boot.config.seed ^ id.0);
        NodeRuntime {
            state: standalone_node_state(id, &boot.config),
            catalog: boot.catalog,
            rng,
            splits: SplitMap::new(),
            extra_sent: 0,
            net,
            config: boot.config,
        }
    }

    /// Total counted sends (engine messages + state transfers).
    fn sent(&self) -> u64 {
        self.net.sent + self.extra_sent
    }

    /// Splits drained buckets by current owner and ships each share as an
    /// `Absorb`. Returns the number of re-homed items.
    fn ship_drained(&mut self, drained: DrainedState, stats: &NodeStats) -> u64 {
        let moved = drained.len() as u64;
        let mut per_owner: HashMap<Id, DrainedState> = HashMap::new();
        for sq in drained.queries {
            if let Ok(owner) = self.net.view.successor_of(sq.key.id()) {
                per_owner.entry(owner).or_default().queries.push(sq);
            }
        }
        for (ring, bucket) in drained.tuples {
            if let Ok(owner) = self.net.view.successor_of(Id(ring)) {
                per_owner.entry(owner).or_default().tuples.push((ring, bucket));
            }
        }
        for (ring, bucket) in drained.altt {
            if let Ok(owner) = self.net.view.successor_of(Id(ring)) {
                per_owner.entry(owner).or_default().altt.push((ring, bucket));
            }
        }
        for (owner, share) in per_owner {
            let transfer = StateTransfer::from_drained(share);
            let msg = ServiceMessage::Absorb { transfer };
            match self.net.send_control(owner, &msg) {
                Ok(()) => self.extra_sent += 1,
                Err(_) => {
                    stats.dispatch_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        moved
    }
}

/// The worker loop: total arrival order per node, exactly like the
/// engine's per-node delivery groups.
fn run_worker(
    member: Member,
    boot: Option<NodeBoot>,
    rx: Receiver<ServiceMessage>,
    stats: Arc<NodeStats>,
    stopping: Arc<AtomicBool>,
) {
    let id = member.id;
    let mut runtime = boot.map(|b| NodeRuntime::new(id, b));
    let mut stash: Vec<ServiceMessage> = Vec::new();

    while let Ok(msg) = rx.recv() {
        match msg {
            ServiceMessage::Configure { config, catalog, mut view } => {
                view.normalize();
                let tick = ServiceClock::DEFAULT_TICK;
                runtime = Some(NodeRuntime::new(id, NodeBoot { config, catalog, view, tick }));
                let rt = runtime.as_mut().expect("just configured");
                for stashed in std::mem::take(&mut stash) {
                    handle_configured(rt, id, stashed, &stats);
                }
            }
            ServiceMessage::Shutdown => break,
            other => match runtime.as_mut() {
                Some(rt) => {
                    if handle_configured(rt, id, other, &stats) {
                        break;
                    }
                }
                None => stash.push(other),
            },
        }
    }
    stopping.store(true, Ordering::Release);
    // Wake the acceptor out of its blocking accept.
    let _ = TcpStream::connect(&member.addr);
}

/// Handles one frame on a configured node. Returns `true` on shutdown.
fn handle_configured(rt: &mut NodeRuntime, id: Id, msg: ServiceMessage, stats: &NodeStats) -> bool {
    match msg {
        ServiceMessage::Engine { at, msg } => {
            rt.net.clock.observe(at);
            stats.processed.fetch_add(1, Ordering::Relaxed);
            if matches!(msg, RJoinMessage::Answer { .. }) {
                // Answers are addressed to query owners (clients); one
                // reaching a ring node is a routing bug upstream, not a
                // reason to crash the node.
                stats.dispatch_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            let t = rt.net.clock.now();
            let effect = handle_node_msg(&mut rt.state, &rt.catalog, &rt.config, t, t, id, msg);
            if let TickEffect::Node { actions, .. } = effect {
                let mut env = NetEnv {
                    net: &mut rt.net,
                    rng: &mut rt.rng,
                    splits: &rt.splits,
                    state: Some(&mut rt.state),
                };
                if perform_actions_in(&mut env, &rt.config, &rt.catalog, id, actions).is_err() {
                    stats.dispatch_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ServiceMessage::Absorb { transfer } => {
            stats.processed.fetch_add(1, Ordering::Relaxed);
            rt.state.absorb(transfer.into_drained(), rt.config.share_subjoins);
        }
        ServiceMessage::View { mut view } => {
            view.normalize();
            rt.net.view = view;
        }
        ServiceMessage::Rehome => {
            let view = rt.net.view.clone();
            let drained = rt.state.drain_misplaced(|ring| {
                // Keep a bucket on resolution failure rather than lose it.
                view.successor_of(Id(ring)).map(|owner| owner == id).unwrap_or(true)
            });
            if !drained.is_empty() {
                rt.ship_drained(drained, stats);
            }
        }
        ServiceMessage::Drain { reply_to } => {
            let drained = rt.state.drain_misplaced(|_| false);
            let moved = rt.ship_drained(drained, stats);
            if rt.net.send_control(reply_to, &ServiceMessage::DrainDone { moved }).is_err() {
                stats.dispatch_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        ServiceMessage::Ping { token, reply_to } => {
            let pong = ServiceMessage::Pong {
                token,
                sent: rt.sent(),
                processed: stats.processed.load(Ordering::Relaxed),
            };
            if rt.net.send_control(reply_to, &pong).is_err() {
                stats.dispatch_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        ServiceMessage::Shutdown => return true,
        ServiceMessage::Configure { .. }
        | ServiceMessage::Pong { .. }
        | ServiceMessage::DrainDone { .. } => {}
    }
    false
}
