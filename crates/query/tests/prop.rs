//! Property-based tests for the query model: parser/printer round-trips and
//! invariants of the rewriting step.

use proptest::prelude::*;
use rjoin_query::{
    candidate_keys, compile_trigger, parse_query, rewrite, Conjunct, IndexLevel, JoinQuery,
    QualifiedAttr, RewriteResult, SelectItem, WindowSpec,
};
use rjoin_relation::{Schema, Tuple, Value};

/// Strategy producing random chain-join queries over relations `R0..R5` with
/// attributes `A0..A3`.
fn arb_chain_query() -> impl Strategy<Value = JoinQuery> {
    (
        2usize..=5,                               // number of relations in the chain
        proptest::collection::vec(0usize..4, 10), // attribute picks
        proptest::bool::ANY,                      // distinct
        prop_oneof![
            Just(WindowSpec::None),
            (1u64..200).prop_map(WindowSpec::sliding_tuples),
            (1u64..200).prop_map(WindowSpec::sliding_time),
        ],
        proptest::option::of(0i64..5), // optional constant predicate value
    )
        .prop_map(|(relations, attrs, distinct, window, const_pred)| {
            let rels: Vec<rjoin_relation::Name> =
                (0..relations).map(|i| rjoin_relation::Name::from(format!("R{i}"))).collect();
            let attr = |i: usize| format!("A{}", attrs[i % attrs.len()]);
            let mut conjuncts = Vec::new();
            for (i, pair) in rels.windows(2).enumerate() {
                conjuncts.push(Conjunct::JoinEq(
                    QualifiedAttr::new(pair[0].clone(), attr(2 * i)),
                    QualifiedAttr::new(pair[1].clone(), attr(2 * i + 1)),
                ));
            }
            if let Some(v) = const_pred {
                conjuncts.push(Conjunct::ConstEq(
                    QualifiedAttr::new(rels[0].clone(), "A0"),
                    Value::from(v),
                ));
            }
            let select = vec![
                SelectItem::Attr(QualifiedAttr::new(rels[0].clone(), attr(7))),
                SelectItem::Attr(QualifiedAttr::new(rels[rels.len() - 1].clone(), attr(8))),
            ];
            JoinQuery::new(distinct, select, rels, conjuncts, window).expect("well-formed chain")
        })
}

fn schema_for(relation: &str) -> Schema {
    Schema::new(relation, ["A0", "A1", "A2", "A3"]).unwrap()
}

fn arb_tuple_for(relation: String) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0i64..5, 4).prop_map(move |vals| {
        Tuple::new(relation.clone(), vals.into_iter().map(Value::from).collect(), 0)
    })
}

proptest! {
    /// Printing a query and re-parsing it yields an identical query.
    #[test]
    fn display_parse_round_trip(query in arb_chain_query()) {
        let printed = query.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(reparsed, query);
    }

    /// Rewriting with a tuple of relation `R` removes `R` from the FROM list,
    /// never increases the number of join conjuncts, and preserves DISTINCT
    /// and the window declaration.
    #[test]
    fn rewrite_shrinks_query(
        query in arb_chain_query(),
        tuple_vals in proptest::collection::vec(0i64..5, 4),
    ) {
        let relation = query.relations()[0].clone();
        let schema = schema_for(&relation);
        let tuple = Tuple::new(
            relation.clone(),
            tuple_vals.into_iter().map(Value::from).collect(),
            0,
        );
        match rewrite(&query, &tuple, &schema).unwrap() {
            RewriteResult::Partial(rewritten) => {
                prop_assert!(!rewritten.references_relation(&relation));
                prop_assert!(rewritten.join_count() < query.join_count()
                    || query.join_count() == 0);
                prop_assert_eq!(rewritten.relations().len(), query.relations().len() - 1);
                prop_assert_eq!(rewritten.distinct(), query.distinct());
                prop_assert_eq!(rewritten.window(), query.window());
            }
            RewriteResult::Complete(row) => {
                prop_assert_eq!(row.len(), query.select().len());
                prop_assert_eq!(query.relations().len(), 1);
            }
            RewriteResult::Mismatch => {
                // Only possible when the query constrains the relation with a
                // constant predicate.
                prop_assert!(query
                    .conjuncts()
                    .iter()
                    .any(|c| matches!(c, Conjunct::ConstEq(a, _) if a.relation == relation)));
            }
        }
    }

    /// Repeatedly rewriting a chain query with matching tuples (one per
    /// relation, sharing the join values) always terminates in a complete
    /// answer after exactly `relations` steps.
    #[test]
    fn full_rewrite_chain_completes(query in arb_chain_query()) {
        // Build tuples whose every attribute is 0 so that all join conjuncts
        // match; a constant predicate on value v != 0 may legitimately
        // mismatch, in which case the chain stops early.
        let mut current = query.clone();
        let mut steps = 0usize;
        while let Some(relation) = current.relations().first().cloned() {
            let schema = schema_for(&relation);
            let tuple = Tuple::new(
                relation.clone(),
                vec![Value::from(0); 4],
                0,
            );
            match rewrite(&current, &tuple, &schema).unwrap() {
                RewriteResult::Partial(next) => {
                    current = next;
                    steps += 1;
                    prop_assert!(steps <= query.relations().len());
                }
                RewriteResult::Complete(row) => {
                    prop_assert_eq!(row.len(), query.select().len());
                    prop_assert_eq!(steps + 1, query.relations().len());
                    break;
                }
                RewriteResult::Mismatch => {
                    // The optional constant predicate did not match value 0.
                    break;
                }
            }
        }
    }

    /// Differential: on a random query driven through a random tuple stream,
    /// the compiled predicate program and the AST interpreter must produce
    /// identical `RewriteResult`s at every step — the same mismatches, the
    /// same byte-identical children and answer rows. The stream keeps
    /// stepping through interpreter children, so rewritten queries (heavy in
    /// `ConstEq` residue and resolved `SELECT` slots) are exercised too.
    #[test]
    fn compiled_program_matches_interpreter(
        query in arb_chain_query(),
        picks in proptest::collection::vec((0usize..5, proptest::collection::vec(0i64..5, 4)), 1..12),
    ) {
        let mut current = query;
        for (rel_pick, vals) in picks {
            if current.relations().is_empty() {
                break;
            }
            let relation = current.relations()[rel_pick % current.relations().len()].clone();
            let schema = schema_for(&relation);
            let tuple = Tuple::new(
                relation.clone(),
                vals.into_iter().map(Value::from).collect(),
                0,
            );
            let interpreted = rewrite(&current, &tuple, &schema).unwrap();
            let program = compile_trigger(&current, &schema).unwrap();
            let compiled = program.execute(&tuple).unwrap();
            prop_assert_eq!(&compiled, &interpreted);
            match interpreted {
                RewriteResult::Partial(next) => current = next,
                RewriteResult::Complete(_) | RewriteResult::Mismatch => break,
            }
        }
    }

    /// Candidate keys are non-empty for any query with at least one conjunct,
    /// deduplicated, and every value-level candidate also has its
    /// attribute-level counterpart or stems from a constant predicate.
    #[test]
    fn candidate_keys_cover_conjuncts(query in arb_chain_query()) {
        let keys = candidate_keys(&query);
        prop_assert!(!keys.is_empty());
        let mut sorted = keys.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), keys.len(), "candidates must be deduplicated");
        // Every join conjunct contributes its two attribute-level keys.
        for conjunct in query.conjuncts() {
            if let Conjunct::JoinEq(a, b) = conjunct {
                prop_assert!(keys.iter().any(|k| k.level() == IndexLevel::Attribute
                    && k.relation() == a.relation
                    && k.attribute_name() == a.attribute));
                prop_assert!(keys.iter().any(|k| k.level() == IndexLevel::Attribute
                    && k.relation() == b.relation
                    && k.attribute_name() == b.attribute));
            }
        }
    }

    /// Key strings are injective over the candidate set: two distinct keys
    /// never produce the same hashed string.
    #[test]
    fn key_strings_are_unique(query in arb_chain_query(), tuple in arb_tuple_for("R0".to_string())) {
        let schema = schema_for("R0");
        let mut keys = candidate_keys(&query);
        keys.extend(rjoin_query::tuple_index_keys(&tuple, &schema));
        keys.sort();
        keys.dedup();
        let mut strings: Vec<String> = keys.iter().map(|k| k.to_key_string()).collect();
        strings.sort();
        let before = strings.len();
        strings.dedup();
        prop_assert_eq!(strings.len(), before);
    }
}
