//! Derivation of DHT index keys for queries and tuples.
//!
//! RJoin indexes items (queries and tuples) under string keys that are then
//! hashed onto the identifier ring:
//!
//! * **attribute level** — `RelationName + AttributeName`,
//! * **value level** — `RelationName + AttributeName + Value`.
//!
//! A tuple is indexed *twice per attribute* (once at each level,
//! Procedure 1). A query is indexed under one key chosen among its
//! *candidate keys* (Section 6): all relation-attribute pairs of its join
//! conjuncts, all explicit relation-attribute-value selection triples, and
//! all triples *implied* by the `WHERE` clause.

use crate::ast::{Conjunct, JoinQuery, QualifiedAttr};
use rjoin_dht::HashedKey;
use rjoin_relation::{Name, Schema, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether an item is indexed at the attribute level or at the value level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexLevel {
    /// Indexed under `Relation + Attribute`.
    Attribute,
    /// Indexed under `Relation + Attribute + Value`.
    Value,
}

/// A key under which a query or tuple is indexed in the DHT.
///
/// The name components are cheaply clonable [`Name`]s: candidate keys are
/// derived per dispatched query and per published tuple, so building one
/// from an AST node must not copy the underlying strings.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IndexKey {
    /// Attribute-level key.
    Attribute {
        /// Relation name.
        relation: Name,
        /// Attribute name.
        attribute: Name,
    },
    /// Value-level key.
    Value {
        /// Relation name.
        relation: Name,
        /// Attribute name.
        attribute: Name,
        /// Attribute value.
        value: Value,
    },
}

impl IndexKey {
    /// Attribute-level key constructor.
    pub fn attribute<R: Into<Name>, A: Into<Name>>(relation: R, attribute: A) -> Self {
        IndexKey::Attribute { relation: relation.into(), attribute: attribute.into() }
    }

    /// Value-level key constructor.
    pub fn value<R: Into<Name>, A: Into<Name>>(relation: R, attribute: A, value: Value) -> Self {
        IndexKey::Value { relation: relation.into(), attribute: attribute.into(), value }
    }

    /// The level of this key.
    pub fn level(&self) -> IndexLevel {
        match self {
            IndexKey::Attribute { .. } => IndexLevel::Attribute,
            IndexKey::Value { .. } => IndexLevel::Value,
        }
    }

    /// The relation this key refers to.
    pub fn relation(&self) -> &str {
        match self {
            IndexKey::Attribute { relation, .. } | IndexKey::Value { relation, .. } => relation,
        }
    }

    /// The attribute this key refers to.
    pub fn attribute_name(&self) -> &str {
        match self {
            IndexKey::Attribute { attribute, .. } | IndexKey::Value { attribute, .. } => attribute,
        }
    }

    /// The value component, for value-level keys.
    pub fn value_part(&self) -> Option<&Value> {
        match self {
            IndexKey::Attribute { .. } => None,
            IndexKey::Value { value, .. } => Some(value),
        }
    }

    /// Canonical string form of the key: the concatenation that is hashed
    /// onto the identifier ring. The `+` separator mirrors the notation of
    /// the paper (`Successor(Hash(R + A + '2'))`).
    pub fn to_key_string(&self) -> String {
        let mut out = String::new();
        self.write_key_string(&mut out);
        out
    }

    /// Appends the canonical string form to `out` (the allocation-free core
    /// of [`IndexKey::to_key_string`], reused by [`IndexKey::hashed`] with a
    /// per-thread scratch buffer).
    fn write_key_string(&self, out: &mut String) {
        match self {
            IndexKey::Attribute { relation, attribute } => {
                out.push_str(relation);
                out.push('+');
                out.push_str(attribute);
            }
            IndexKey::Value { relation, attribute, value } => {
                out.push_str(relation);
                out.push('+');
                out.push_str(attribute);
                out.push('+');
                value.write_key_fragment(out);
            }
        }
    }

    /// The attribute-level key covering the same relation/attribute.
    pub fn to_attribute_level(&self) -> IndexKey {
        IndexKey::attribute(self.relation(), self.attribute_name())
    }

    /// Interns this key: derives the canonical string and hashes it onto the
    /// identifier ring exactly once. All hot-path consumers (messages, node
    /// state, load accounting) carry the returned [`HashedKey`] instead of
    /// re-deriving string + SHA-1 at every layer. The string is assembled in
    /// a per-thread scratch buffer and resolved through the
    /// [`HashedKey::intern`] memo, so repeat derivations of the same key
    /// cost a hash-map probe rather than an allocation plus a SHA-1 digest.
    pub fn hashed(&self) -> HashedKey {
        use std::cell::RefCell;
        thread_local! {
            static KEY_BUF: RefCell<String> = const { RefCell::new(String::new()) };
        }
        KEY_BUF.with(|buf| {
            let mut buf = buf.borrow_mut();
            buf.clear();
            self.write_key_string(&mut buf);
            HashedKey::intern(&buf)
        })
    }
}

impl fmt::Display for IndexKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_key_string())
    }
}

/// Computes the full set of keys under which a tuple must be indexed
/// (Procedure 1): for each attribute, one attribute-level key and one
/// value-level key.
pub fn tuple_index_keys(tuple: &Tuple, schema: &Schema) -> Vec<IndexKey> {
    let mut keys = Vec::with_capacity(tuple.arity() * 2);
    for (i, value) in tuple.values().iter().enumerate() {
        let attribute = schema.attribute(i).unwrap_or("_unknown");
        keys.push(IndexKey::attribute(tuple.relation(), attribute));
        keys.push(IndexKey::value(tuple.relation(), attribute, value.clone()));
    }
    keys
}

/// A tiny union-find over attribute references used to compute the equality
/// closure of a `WHERE` clause. Shared with the planner
/// ([`crate::plan::JoinGraph`]), which runs the same closure to derive the
/// join-graph vertices — one equivalence semantics for keys and plans.
///
/// Attribute references are borrowed from the query and resolved with a
/// linear probe: the attribute sets involved are tiny (a handful per query),
/// so a scan beats a map and the whole structure stays allocation-light on
/// the per-tuple dispatch path.
pub(crate) struct AttrUnionFind<'q> {
    parent: Vec<usize>,
    ids: Vec<&'q QualifiedAttr>,
}

impl<'q> AttrUnionFind<'q> {
    pub(crate) fn with_capacity(cap: usize) -> Self {
        AttrUnionFind { parent: Vec::with_capacity(cap), ids: Vec::with_capacity(cap) }
    }

    pub(crate) fn id(&mut self, attr: &'q QualifiedAttr) -> usize {
        if let Some(id) = self.ids.iter().position(|known| *known == attr) {
            return id;
        }
        let id = self.parent.len();
        self.parent.push(id);
        self.ids.push(attr);
        id
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Number of distinct attribute references interned so far.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// The attribute reference interned under `id`.
    pub(crate) fn attr(&self, id: usize) -> &'q QualifiedAttr {
        self.ids[id]
    }
}

/// Computes the candidate index keys of a query (input or rewritten), per
/// Section 6 of the paper:
///
/// 1. every relation-attribute pair that appears in a join conjunct,
/// 2. every relation-attribute-value triple appearing explicitly as a
///    selection conjunct,
/// 3. every relation-attribute-value triple *logically implied* by the
///    `WHERE` clause (via the transitive closure of the equalities).
///
/// The returned list is deduplicated and deterministic (sorted), with
/// value-level candidates listed after attribute-level ones for the same
/// relation/attribute.
pub fn candidate_keys(query: &JoinQuery) -> Vec<IndexKey> {
    // Each conjunct mentions at most two attributes, which bounds the
    // distinct-attribute universe the union-find can see.
    let mut uf = AttrUnionFind::with_capacity(query.conjuncts().len() * 2);
    // Constants attached to equivalence classes (by member id, resolved to
    // representatives once all unions are in).
    let mut pending_consts: Vec<(usize, &Value)> = Vec::new();

    let mut keys: Vec<IndexKey> = Vec::new();
    for conjunct in query.conjuncts() {
        match conjunct {
            Conjunct::JoinEq(a, b) => {
                keys.push(IndexKey::attribute(&a.relation, &a.attribute));
                keys.push(IndexKey::attribute(&b.relation, &b.attribute));
                let ia = uf.id(a);
                let ib = uf.id(b);
                uf.union(ia, ib);
            }
            Conjunct::ConstEq(a, v) => {
                let ia = uf.id(a);
                pending_consts.push((ia, v));
            }
        }
    }

    // Resolve constants to class representatives *after* all unions so the
    // closure covers chains like R.A = S.B AND S.B = 5  =>  R.A = 5. The
    // pass is skipped outright for pure join queries (no constants — the
    // common case on the dispatch hot path).
    if !pending_consts.is_empty() {
        let mut class_const: Vec<(usize, &Value)> = Vec::new();
        for (id, v) in pending_consts {
            let root = uf.find(id);
            if !class_const.iter().any(|(r, _)| *r == root) {
                class_const.push((root, v));
            }
        }
        for id in 0..uf.ids.len() {
            let root = uf.find(id);
            if let Some((_, v)) = class_const.iter().find(|(r, _)| *r == root) {
                let attr = uf.ids[id];
                keys.push(IndexKey::value(&attr.relation, &attr.attribute, (*v).clone()));
            }
        }
    }

    keys.sort();
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn tuple_keys_cover_both_levels() {
        let schema = Schema::new("R", ["A", "B"]).unwrap();
        let t = Tuple::new("R", vec![Value::from(3), Value::from(5)], 0);
        let keys = tuple_index_keys(&t, &schema);
        assert_eq!(keys.len(), 4);
        assert!(keys.contains(&IndexKey::attribute("R", "A")));
        assert!(keys.contains(&IndexKey::attribute("R", "B")));
        assert!(keys.contains(&IndexKey::value("R", "A", Value::from(3))));
        assert!(keys.contains(&IndexKey::value("R", "B", Value::from(5))));
    }

    #[test]
    fn key_string_forms() {
        assert_eq!(IndexKey::attribute("R", "A").to_key_string(), "R+A");
        assert_eq!(IndexKey::value("R", "A", Value::from(2)).to_key_string(), "R+A+i:2");
        assert_eq!(IndexKey::value("R", "A", Value::from("x")).to_key_string(), "R+A+s:x");
    }

    #[test]
    fn hashed_key_agrees_with_key_string() {
        let k = IndexKey::value("R", "A", Value::from(2));
        let h = k.hashed();
        assert_eq!(h.as_str(), k.to_key_string());
        assert_eq!(h.id(), rjoin_dht::Id::hash_key(&k.to_key_string()));
    }

    #[test]
    fn attribute_and_value_keys_never_collide() {
        let a = IndexKey::attribute("R", "A");
        let v = IndexKey::value("R", "A", Value::from(1));
        assert_ne!(a.to_key_string(), v.to_key_string());
        assert_eq!(v.to_attribute_level(), a);
    }

    #[test]
    fn candidates_for_pure_join_query_are_attribute_level() {
        let q = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let keys = candidate_keys(&q);
        assert_eq!(keys, vec![IndexKey::attribute("R", "A"), IndexKey::attribute("S", "B")]);
    }

    #[test]
    fn explicit_const_eq_yields_value_candidate() {
        let q = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B AND R.C = 7").unwrap();
        let keys = candidate_keys(&q);
        assert!(keys.contains(&IndexKey::value("R", "C", Value::from(7))));
    }

    #[test]
    fn implied_const_eq_yields_value_candidates_for_whole_class() {
        // R.A = S.B AND S.B = 5 implies R.A = 5.
        let q = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B AND S.B = 5").unwrap();
        let keys = candidate_keys(&q);
        assert!(keys.contains(&IndexKey::value("R", "A", Value::from(5))));
        assert!(keys.contains(&IndexKey::value("S", "B", Value::from(5))));
    }

    #[test]
    fn implied_closure_spans_chains() {
        // R.A = S.B AND S.B = P.C AND P.C = 9 implies R.A = 9.
        let q = parse_query("SELECT R.A FROM R, S, P WHERE R.A = S.B AND S.B = P.C AND P.C = 9")
            .unwrap();
        let keys = candidate_keys(&q);
        assert!(keys.contains(&IndexKey::value("R", "A", Value::from(9))));
        assert!(keys.contains(&IndexKey::value("S", "B", Value::from(9))));
        assert!(keys.contains(&IndexKey::value("P", "C", Value::from(9))));
    }

    #[test]
    fn cyclic_conjunct_closure_does_not_duplicate_keys() {
        // The cycle-closing conjunct T.C = R.C revisits relations already in
        // the chain; every candidate must still appear exactly once.
        let q = parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B AND T.C = R.C")
            .unwrap();
        let keys = candidate_keys(&q);
        let mut deduped = keys.clone();
        deduped.dedup();
        assert_eq!(keys, deduped);
        assert_eq!(keys.len(), 6, "three join classes x two members, attribute level only");
        for k in &keys {
            assert_eq!(k.level(), IndexLevel::Attribute);
        }
    }

    #[test]
    fn cyclic_closure_with_constant_covers_the_whole_class() {
        // A constant attached anywhere on a cycle edge must imply value-level
        // candidates for every member of that class — and only that class.
        let q = parse_query(
            "SELECT R.A FROM R, S, T \
             WHERE R.A = S.A AND S.B = T.B AND T.C = R.C AND R.C = 4",
        )
        .unwrap();
        let keys = candidate_keys(&q);
        assert!(keys.contains(&IndexKey::value("R", "C", Value::from(4))));
        assert!(keys.contains(&IndexKey::value("T", "C", Value::from(4))));
        assert!(!keys.contains(&IndexKey::value("R", "A", Value::from(4))));
        assert!(!keys.contains(&IndexKey::value("S", "B", Value::from(4))));
        let value_keys = keys.iter().filter(|k| k.level() == IndexLevel::Value).count();
        assert_eq!(value_keys, 2);
    }

    #[test]
    fn single_class_cycle_collapses_without_duplicates() {
        // R.A = S.A AND S.A = T.A AND T.A = R.A closes a "cycle" on one
        // equivalence class; the closure must neither duplicate attribute
        // keys nor, with a constant attached, miss any implied value key.
        let q = parse_query(
            "SELECT R.A FROM R, S, T \
             WHERE R.A = S.A AND S.A = T.A AND T.A = R.A AND S.A = 2",
        )
        .unwrap();
        let keys = candidate_keys(&q);
        let mut deduped = keys.clone();
        deduped.dedup();
        assert_eq!(keys, deduped);
        for (rel, attr) in [("R", "A"), ("S", "A"), ("T", "A")] {
            assert!(keys.contains(&IndexKey::attribute(rel, attr)));
            assert!(keys.contains(&IndexKey::value(rel, attr, Value::from(2))));
        }
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn candidates_are_deduplicated() {
        let q = parse_query("SELECT R.A FROM R, S, P WHERE R.A = S.B AND R.A = P.C").unwrap();
        let keys = candidate_keys(&q);
        let attr_r_a = keys.iter().filter(|k| **k == IndexKey::attribute("R", "A")).count();
        assert_eq!(attr_r_a, 1);
    }
}
