//! Canonical sub-join fingerprints for shared evaluation.
//!
//! Multi-query optimization in the style of Dossinger & Michel ("Optimizing
//! Multiple Multi-Way Stream Joins") shares the evaluation of structurally
//! identical sub-joins across queries. Two (possibly rewritten) queries can
//! share evaluation when they agree on everything that drives the rewriting
//! process — the `FROM` list, the `WHERE` conjuncts, the window declaration
//! and the bag/set semantics flag — regardless of what each of them
//! `SELECT`s: the `SELECT` list only determines the final projection, which
//! each subscriber resolves for itself.
//!
//! [`fingerprint`] therefore hashes a *canonical* form of the query that
//!
//! * sorts the `FROM` relations,
//! * normalizes each conjunct (the two sides of an equi-join predicate are
//!   ordered lexicographically) and sorts the conjunct list,
//! * includes the window declaration and the `DISTINCT` flag,
//! * **abstracts the `SELECT` list away entirely**,
//!
//! so that identical sub-joins produced by different input queries — or by
//! the same rewriting step applied to equivalent queries on different nodes —
//! collide on the same 64-bit fingerprint. The canonical string itself is
//! available via [`subjoin_signature`] for diagnostics and tests.

use crate::ast::{Conjunct, JoinQuery, QualifiedAttr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit digest of a query's sub-join structure (everything except the
/// `SELECT` list). Equal fingerprints are a fast *candidate* test for
/// sharing; callers must confirm with a structural comparison before merging
/// (hash collisions, while astronomically unlikely, must not corrupt
/// answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn push_attr(out: &mut String, attr: &QualifiedAttr) {
    out.push_str(&attr.relation);
    out.push('.');
    out.push_str(&attr.attribute);
}

fn push_conjunct(out: &mut String, c: &Conjunct) {
    match c {
        Conjunct::JoinEq(a, b) => {
            let (first, second) = if (&a.relation, &a.attribute) <= (&b.relation, &b.attribute) {
                (a, b)
            } else {
                (b, a)
            };
            out.push_str("j:");
            push_attr(out, first);
            out.push('=');
            push_attr(out, second);
        }
        Conjunct::ConstEq(a, v) => {
            out.push_str("c:");
            push_attr(out, a);
            out.push('=');
            v.write_key_fragment(out);
        }
    }
}

/// Appends the canonical signature to `out`. Per-conjunct strings are
/// rendered into a per-thread scratch pool (fingerprints are computed at
/// every stored-entry first trigger, so the assembly must not allocate on
/// repeat calls) and the pool entries are emitted in sorted order.
fn write_signature(query: &JoinQuery, out: &mut String) {
    use std::cell::RefCell;
    use std::fmt::Write;
    thread_local! {
        static CONJ_POOL: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    }

    out.push_str(if query.distinct() { "D|" } else { "B|" });

    let mut relations: Vec<&str> = query.relations().iter().map(|r| r.as_str()).collect();
    relations.sort_unstable();
    for (i, r) in relations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    out.push('|');

    CONJ_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let n = query.conjuncts().len();
        if pool.len() < n {
            pool.resize_with(n, String::new);
        }
        for (buf, c) in pool.iter_mut().zip(query.conjuncts()) {
            buf.clear();
            push_conjunct(buf, c);
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| pool[a].cmp(&pool[b]));
        for (i, &c) in order.iter().enumerate() {
            if i > 0 {
                out.push('&');
            }
            out.push_str(&pool[c]);
        }
    });
    out.push('|');
    let _ = write!(out, "{}", query.window());
}

/// The canonical string form of a query's sub-join structure. Stable across
/// conjunct order, join-side order and `SELECT` list differences.
pub fn subjoin_signature(query: &JoinQuery) -> String {
    let mut out = String::with_capacity(64);
    write_signature(query, &mut out);
    out
}

/// Whether two queries have byte-identical canonical signatures — the
/// structural confirmation behind a fingerprint match. Equivalent to
/// `subjoin_signature(a) == subjoin_signature(b)` but renders both sides
/// into per-thread scratch buffers, so the comparison does not allocate
/// after warm-up (it runs on every candidate sharing merge).
pub fn subjoin_signature_eq(a: &JoinQuery, b: &JoinQuery) -> bool {
    use std::cell::RefCell;
    thread_local! {
        static EQ_BUFS: RefCell<(String, String)> =
            const { RefCell::new((String::new(), String::new())) };
    }
    EQ_BUFS.with(|bufs| {
        let mut bufs = bufs.borrow_mut();
        let (left, right) = &mut *bufs;
        left.clear();
        right.clear();
        write_signature(a, left);
        write_signature(b, right);
        left == right
    })
}

/// Computes the sub-join [`Fingerprint`] of a query: an FNV-1a 64-bit hash
/// of [`subjoin_signature`]. Deterministic across processes and runs (no
/// per-process hasher randomness), so fingerprints can travel in messages
/// and be compared across nodes. The signature is assembled in a per-thread
/// scratch buffer, so computing a fingerprint does not allocate after
/// warm-up.
pub fn fingerprint(query: &JoinQuery) -> Fingerprint {
    use std::cell::RefCell;
    thread_local! {
        static SIG_BUF: RefCell<String> = const { RefCell::new(String::new()) };
    }
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    SIG_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        write_signature(query, &mut buf);
        let mut hash = FNV_OFFSET;
        for byte in buf.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Fingerprint(hash)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn select_list_is_abstracted() {
        let a = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let b = parse_query("SELECT S.B, R.C FROM R, S WHERE R.A = S.B").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(subjoin_signature(&a), subjoin_signature(&b));
    }

    #[test]
    fn conjunct_and_side_order_are_normalized() {
        let a = parse_query("SELECT R.A FROM R, S, P WHERE R.A = S.B AND S.C = P.C").unwrap();
        let b = parse_query("SELECT R.A FROM P, S, R WHERE P.C = S.C AND S.B = R.A").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_conjuncts_do_not_collide() {
        let a = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let b = parse_query("SELECT R.A FROM R, S WHERE R.A = S.C").unwrap();
        let c = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B AND R.C = 7").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn window_and_distinct_are_part_of_the_fingerprint() {
        let plain = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let windowed =
            parse_query("SELECT R.A FROM R, S WHERE R.A = S.B WINDOW SLIDING 10 TUPLES").unwrap();
        let distinct = parse_query("SELECT DISTINCT R.A FROM R, S WHERE R.A = S.B").unwrap();
        assert_ne!(fingerprint(&plain), fingerprint(&windowed));
        assert_ne!(fingerprint(&plain), fingerprint(&distinct));
    }

    #[test]
    fn const_values_distinguish_type_and_value() {
        let a = parse_query("SELECT R.A FROM R WHERE R.A = 5").unwrap();
        let b = parse_query("SELECT R.A FROM R WHERE R.A = '5'").unwrap();
        let c = parse_query("SELECT R.A FROM R WHERE R.A = 6").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn signature_shape_is_documented() {
        let q = parse_query("SELECT R.A FROM S, R WHERE S.B = R.A").unwrap();
        assert_eq!(subjoin_signature(&q), "B|R,S|j:R.A=S.B|WINDOW NONE");
    }
}
