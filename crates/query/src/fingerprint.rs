//! Canonical sub-join fingerprints for shared evaluation.
//!
//! Multi-query optimization in the style of Dossinger & Michel ("Optimizing
//! Multiple Multi-Way Stream Joins") shares the evaluation of structurally
//! identical sub-joins across queries. Two (possibly rewritten) queries can
//! share evaluation when they agree on everything that drives the rewriting
//! process — the `FROM` list, the `WHERE` conjuncts, the window declaration
//! and the bag/set semantics flag — regardless of what each of them
//! `SELECT`s: the `SELECT` list only determines the final projection, which
//! each subscriber resolves for itself.
//!
//! [`fingerprint`] therefore hashes a *canonical* form of the query that
//!
//! * sorts the `FROM` relations,
//! * normalizes each conjunct (the two sides of an equi-join predicate are
//!   ordered lexicographically) and sorts the conjunct list,
//! * includes the window declaration and the `DISTINCT` flag,
//! * **abstracts the `SELECT` list away entirely**,
//!
//! so that identical sub-joins produced by different input queries — or by
//! the same rewriting step applied to equivalent queries on different nodes —
//! collide on the same 64-bit fingerprint. The canonical string itself is
//! available via [`subjoin_signature`] for diagnostics and tests.

use crate::ast::{Conjunct, JoinQuery, QualifiedAttr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 64-bit digest of a query's sub-join structure (everything except the
/// `SELECT` list). Equal fingerprints are a fast *candidate* test for
/// sharing; callers must confirm with a structural comparison before merging
/// (hash collisions, while astronomically unlikely, must not corrupt
/// answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn push_attr(out: &mut String, attr: &QualifiedAttr) {
    out.push_str(&attr.relation);
    out.push('.');
    out.push_str(&attr.attribute);
}

/// The canonical string form of a query's sub-join structure. Stable across
/// conjunct order, join-side order and `SELECT` list differences.
pub fn subjoin_signature(query: &JoinQuery) -> String {
    let mut out = String::with_capacity(64);
    out.push_str(if query.distinct() { "D|" } else { "B|" });

    let mut relations: Vec<&str> = query.relations().iter().map(String::as_str).collect();
    relations.sort_unstable();
    for (i, r) in relations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r);
    }
    out.push('|');

    let mut conjuncts: Vec<String> = query
        .conjuncts()
        .iter()
        .map(|c| {
            let mut s = String::with_capacity(16);
            match c {
                Conjunct::JoinEq(a, b) => {
                    let (first, second) =
                        if (&a.relation, &a.attribute) <= (&b.relation, &b.attribute) {
                            (a, b)
                        } else {
                            (b, a)
                        };
                    s.push_str("j:");
                    push_attr(&mut s, first);
                    s.push('=');
                    push_attr(&mut s, second);
                }
                Conjunct::ConstEq(a, v) => {
                    s.push_str("c:");
                    push_attr(&mut s, a);
                    s.push('=');
                    s.push_str(&v.key_fragment());
                }
            }
            s
        })
        .collect();
    conjuncts.sort_unstable();
    for (i, c) in conjuncts.iter().enumerate() {
        if i > 0 {
            out.push('&');
        }
        out.push_str(c);
    }
    out.push('|');
    out.push_str(&query.window().to_string());
    out
}

/// Computes the sub-join [`Fingerprint`] of a query: an FNV-1a 64-bit hash
/// of [`subjoin_signature`]. Deterministic across processes and runs (no
/// per-process hasher randomness), so fingerprints can travel in messages
/// and be compared across nodes.
pub fn fingerprint(query: &JoinQuery) -> Fingerprint {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in subjoin_signature(query).bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    Fingerprint(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn select_list_is_abstracted() {
        let a = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let b = parse_query("SELECT S.B, R.C FROM R, S WHERE R.A = S.B").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(subjoin_signature(&a), subjoin_signature(&b));
    }

    #[test]
    fn conjunct_and_side_order_are_normalized() {
        let a = parse_query("SELECT R.A FROM R, S, P WHERE R.A = S.B AND S.C = P.C").unwrap();
        let b = parse_query("SELECT R.A FROM P, S, R WHERE P.C = S.C AND S.B = R.A").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_conjuncts_do_not_collide() {
        let a = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let b = parse_query("SELECT R.A FROM R, S WHERE R.A = S.C").unwrap();
        let c = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B AND R.C = 7").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn window_and_distinct_are_part_of_the_fingerprint() {
        let plain = parse_query("SELECT R.A FROM R, S WHERE R.A = S.B").unwrap();
        let windowed =
            parse_query("SELECT R.A FROM R, S WHERE R.A = S.B WINDOW SLIDING 10 TUPLES").unwrap();
        let distinct = parse_query("SELECT DISTINCT R.A FROM R, S WHERE R.A = S.B").unwrap();
        assert_ne!(fingerprint(&plain), fingerprint(&windowed));
        assert_ne!(fingerprint(&plain), fingerprint(&distinct));
    }

    #[test]
    fn const_values_distinguish_type_and_value() {
        let a = parse_query("SELECT R.A FROM R WHERE R.A = 5").unwrap();
        let b = parse_query("SELECT R.A FROM R WHERE R.A = '5'").unwrap();
        let c = parse_query("SELECT R.A FROM R WHERE R.A = 6").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn signature_shape_is_documented() {
        let q = parse_query("SELECT R.A FROM S, R WHERE S.B = R.A").unwrap();
        assert_eq!(subjoin_signature(&q), "B|R,S|j:R.A=S.B|WINDOW NONE");
    }
}
