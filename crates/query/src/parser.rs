//! A small SQL parser for the continuous-query dialect used in the paper.
//!
//! Supported grammar (keywords are case-insensitive):
//!
//! ```text
//! query      := SELECT [DISTINCT] select_list FROM rel_list
//!               [WHERE conjunct (AND conjunct)*] [window]
//! select_list:= item (',' item)*
//! item       := ident '.' ident | literal
//! rel_list   := ident (',' ident)*
//! conjunct   := operand '=' operand          -- at least one side an attribute
//! operand    := ident '.' ident | literal
//! literal    := integer | 'string'
//! window     := WINDOW (NONE | (SLIDING|TUMBLING) integer (TIME|TUPLES))
//! ```

use crate::ast::{Conjunct, JoinQuery, QualifiedAttr, SelectItem};
use crate::window::{WindowKind, WindowSpec};
use crate::QueryError;
use rjoin_relation::{Name, Value};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Str(String),
    Comma,
    Dot,
    Equals,
    End,
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse { message: message.into(), position: self.pos }
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn next_token(&mut self) -> Result<(Token, usize), QueryError> {
        self.skip_whitespace();
        let start = self.pos;
        if self.pos >= self.bytes.len() {
            return Ok((Token::End, start));
        }
        let c = self.bytes[self.pos];
        match c {
            b',' => {
                self.pos += 1;
                Ok((Token::Comma, start))
            }
            b'.' => {
                self.pos += 1;
                Ok((Token::Dot, start))
            }
            b'=' => {
                self.pos += 1;
                Ok((Token::Equals, start))
            }
            b'\'' => {
                self.pos += 1;
                let content_start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.error("unterminated string literal"));
                }
                let s = self.input[content_start..self.pos].to_string();
                self.pos += 1; // consume closing quote
                Ok((Token::Str(s), start))
            }
            b'-' | b'0'..=b'9' => {
                let num_start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                    if self.pos >= self.bytes.len() || !self.bytes[self.pos].is_ascii_digit() {
                        return Err(self.error("expected digits after `-`"));
                    }
                }
                while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = &self.input[num_start..self.pos];
                let value: i64 =
                    text.parse().map_err(|_| self.error(format!("invalid integer `{text}`")))?;
                Ok((Token::Int(value), start))
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok((Token::Ident(self.input[start..self.pos].to_string()), start))
            }
            other => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    index: usize,
    input_len: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Result<Self, QueryError> {
        let mut lexer = Lexer::new(input);
        let mut tokens = Vec::new();
        loop {
            let (tok, pos) = lexer.next_token()?;
            let end = tok == Token::End;
            tokens.push((tok, pos));
            if end {
                break;
            }
        }
        Ok(Parser { tokens, index: 0, input_len: input.len(), _marker: std::marker::PhantomData })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.index].0
    }

    fn position(&self) -> usize {
        self.tokens.get(self.index).map(|(_, p)| *p).unwrap_or(self.input_len)
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse { message: message.into(), position: self.position() }
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.index].0.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        tok
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        match self.advance() {
            Token::Ident(word) if word.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword `{kw}`, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(word) if word.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, QueryError> {
        match self.advance() {
            Token::Ident(word) => Ok(word),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_operand(&mut self) -> Result<Operand, QueryError> {
        match self.advance() {
            Token::Int(v) => Ok(Operand::Literal(Value::Int(v))),
            Token::Str(s) => Ok(Operand::Literal(Value::Str(s))),
            Token::Ident(relation) => {
                if *self.peek() == Token::Dot {
                    self.advance();
                    let attribute = self.expect_ident()?;
                    Ok(Operand::Attr(QualifiedAttr {
                        relation: relation.into(),
                        attribute: attribute.into(),
                    }))
                } else {
                    Err(self.error(format!(
                        "expected `.` after `{relation}` (attributes must be qualified as Relation.Attribute)"
                    )))
                }
            }
            other => Err(self.error(format!("expected attribute or literal, found {other:?}"))),
        }
    }

    fn parse_select_list(&mut self) -> Result<(bool, Vec<SelectItem>), QueryError> {
        let distinct = if self.peek_keyword("DISTINCT") {
            self.advance();
            true
        } else {
            false
        };
        let mut items = Vec::new();
        loop {
            let item = match self.parse_operand()? {
                Operand::Attr(a) => SelectItem::Attr(a),
                Operand::Literal(v) => SelectItem::Const(v),
            };
            items.push(item);
            if *self.peek() == Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok((distinct, items))
    }

    fn parse_rel_list(&mut self) -> Result<Vec<Name>, QueryError> {
        let mut rels = Vec::new();
        loop {
            rels.push(self.expect_ident()?.into());
            if *self.peek() == Token::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok(rels)
    }

    fn parse_conjuncts(&mut self) -> Result<Vec<Conjunct>, QueryError> {
        let mut conjuncts = Vec::new();
        loop {
            let left = self.parse_operand()?;
            if self.advance() != Token::Equals {
                return Err(self.error("expected `=` in WHERE conjunct"));
            }
            let right = self.parse_operand()?;
            let conjunct = match (left, right) {
                (Operand::Attr(a), Operand::Attr(b)) => Conjunct::JoinEq(a, b),
                (Operand::Attr(a), Operand::Literal(v))
                | (Operand::Literal(v), Operand::Attr(a)) => Conjunct::ConstEq(a, v),
                (Operand::Literal(_), Operand::Literal(_)) => {
                    return Err(self.error("a conjunct must reference at least one attribute"))
                }
            };
            conjuncts.push(conjunct);
            if self.peek_keyword("AND") {
                self.advance();
            } else {
                break;
            }
        }
        Ok(conjuncts)
    }

    fn parse_window(&mut self) -> Result<WindowSpec, QueryError> {
        // The WINDOW keyword has already been consumed.
        if self.peek_keyword("NONE") {
            self.advance();
            return Ok(WindowSpec::None);
        }
        let sliding = if self.peek_keyword("SLIDING") {
            self.advance();
            true
        } else if self.peek_keyword("TUMBLING") {
            self.advance();
            false
        } else {
            return Err(self.error("expected SLIDING, TUMBLING or NONE after WINDOW"));
        };
        let duration = match self.advance() {
            Token::Int(v) if v > 0 => v as u64,
            Token::Int(v) => {
                return Err(self.error(format!("window duration must be positive, got {v}")))
            }
            other => return Err(self.error(format!("expected window duration, found {other:?}"))),
        };
        let kind = if self.peek_keyword("TIME") {
            self.advance();
            WindowKind::Time
        } else if self.peek_keyword("TUPLES") {
            self.advance();
            WindowKind::Tuples
        } else {
            return Err(self.error("expected TIME or TUPLES after window duration"));
        };
        Ok(if sliding {
            WindowSpec::Sliding { duration, kind }
        } else {
            WindowSpec::Tumbling { duration, kind }
        })
    }

    fn parse_query(&mut self) -> Result<JoinQuery, QueryError> {
        self.expect_keyword("SELECT")?;
        let (distinct, select) = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let relations = self.parse_rel_list()?;
        let conjuncts = if self.peek_keyword("WHERE") {
            self.advance();
            self.parse_conjuncts()?
        } else {
            Vec::new()
        };
        let window = if self.peek_keyword("WINDOW") {
            self.advance();
            self.parse_window()?
        } else {
            WindowSpec::None
        };
        if *self.peek() != Token::End {
            return Err(self.error(format!("unexpected trailing input: {:?}", self.peek())));
        }
        JoinQuery::new(distinct, select, relations, conjuncts, window)
    }
}

enum Operand {
    Attr(QualifiedAttr),
    Literal(Value),
}

/// Parses a continuous multi-way equi-join query from SQL text.
///
/// ```
/// use rjoin_query::parse_query;
/// let q = parse_query("SELECT R.B, S.B FROM R, S, P WHERE R.A = S.A AND S.B = P.B").unwrap();
/// assert_eq!(q.join_count(), 2);
/// assert_eq!(q.relations(), &["R".to_string(), "S".to_string(), "P".to_string()]);
/// ```
pub fn parse_query(input: &str) -> Result<JoinQuery, QueryError> {
    Parser::new(input)?.parse_query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query_q1() {
        let q = parse_query("select R.B, S.B from R,S,P where R.A=S.A and S.B=P.B").unwrap();
        assert!(!q.distinct());
        assert_eq!(q.relations(), &["R".to_string(), "S".to_string(), "P".to_string()]);
        assert_eq!(q.join_count(), 2);
        assert_eq!(
            q.select(),
            &[
                SelectItem::Attr(QualifiedAttr::new("R", "B")),
                SelectItem::Attr(QualifiedAttr::new("S", "B"))
            ]
        );
    }

    #[test]
    fn parses_distinct_and_const_eq() {
        let q = parse_query("SELECT DISTINCT R.A FROM R, S WHERE R.A = S.B AND S.C = 42").unwrap();
        assert!(q.distinct());
        assert!(q
            .conjuncts()
            .contains(&Conjunct::ConstEq(QualifiedAttr::new("S", "C"), Value::from(42))));
    }

    #[test]
    fn parses_literal_on_left_side() {
        let q = parse_query("SELECT S.B FROM S WHERE 3 = S.A").unwrap();
        assert_eq!(
            q.conjuncts(),
            &[Conjunct::ConstEq(QualifiedAttr::new("S", "A"), Value::from(3))]
        );
    }

    #[test]
    fn parses_string_literals_and_negative_integers() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 'abc' AND S.B = -7").unwrap();
        assert_eq!(q.conjuncts().len(), 2);
        assert!(q
            .conjuncts()
            .contains(&Conjunct::ConstEq(QualifiedAttr::new("S", "A"), Value::from("abc"))));
        assert!(q
            .conjuncts()
            .contains(&Conjunct::ConstEq(QualifiedAttr::new("S", "B"), Value::from(-7))));
    }

    #[test]
    fn parses_window_clauses() {
        let q =
            parse_query("SELECT R.A FROM R, S WHERE R.A = S.A WINDOW SLIDING 100 TUPLES").unwrap();
        assert_eq!(*q.window(), WindowSpec::sliding_tuples(100));

        let q =
            parse_query("SELECT R.A FROM R, S WHERE R.A = S.A WINDOW TUMBLING 60 TIME").unwrap();
        assert_eq!(*q.window(), WindowSpec::tumbling_time(60));

        let q = parse_query("SELECT R.A FROM R, S WHERE R.A = S.A WINDOW NONE").unwrap();
        assert_eq!(*q.window(), WindowSpec::None);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse_query("Select r.a From r, s Where r.a = s.b").unwrap();
        assert_eq!(q.join_count(), 1);
    }

    #[test]
    fn query_without_where_on_single_relation() {
        let q = parse_query("SELECT R.A FROM R").unwrap();
        assert_eq!(q.join_count(), 0);
        assert_eq!(q.relations(), &["R".to_string()]);
    }

    #[test]
    fn error_on_unqualified_attribute() {
        let err = parse_query("SELECT A FROM R").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }), "{err}");
    }

    #[test]
    fn error_on_missing_from() {
        let err = parse_query("SELECT R.A").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn error_on_literal_equals_literal() {
        let err = parse_query("SELECT R.A FROM R WHERE 1 = 2").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn error_on_trailing_garbage() {
        let err = parse_query("SELECT R.A FROM R WHERE R.A = 1 GARBAGE MORE").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn error_on_unterminated_string() {
        let err = parse_query("SELECT R.A FROM R WHERE R.A = 'oops").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn error_on_zero_window_duration() {
        let err = parse_query("SELECT R.A FROM R, S WHERE R.A = S.A WINDOW SLIDING 0 TUPLES")
            .unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let input = "SELECT R.A FROM R WHERE ???";
        match parse_query(input).unwrap_err() {
            QueryError::Parse { position, .. } => assert!(position >= input.find('?').unwrap()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn display_output_reparses_to_equal_query() {
        let original = parse_query(
            "SELECT DISTINCT R.B, S.B FROM R, S, P WHERE R.A = S.A AND S.B = P.B AND P.C = 5 \
             WINDOW SLIDING 20 TIME",
        )
        .unwrap();
        let reparsed = parse_query(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }
}
