//! Query model for the RJoin reproduction.
//!
//! This crate contains everything RJoin needs to know about continuous
//! multi-way equi-join queries, independently of any network concern:
//!
//! * [`JoinQuery`] — the AST of a (possibly already rewritten) multi-way
//!   equi-join: a `SELECT` list, a set of remaining relations and a
//!   conjunction of equality predicates ([`Conjunct`]),
//! * [`parse_query`] — a small SQL parser for the continuous-query dialect
//!   used throughout the paper (`SELECT ... FROM ... WHERE a = b AND ...`,
//!   optional `DISTINCT`, optional `WINDOW` clause),
//! * [`rewrite`] — the incremental rewriting step at the heart of RJoin:
//!   substituting an incoming tuple into a query produces either a smaller
//!   query, a complete answer, or a mismatch,
//! * [`compile_trigger`] / [`compile_subjoin`] — compilation of that
//!   rewriting step into flat predicate programs,
//! * [`IndexKey`] / [`candidate_keys`] — derivation of the attribute-level
//!   and value-level DHT keys under which queries and tuples are indexed
//!   (Sections 3 and 6 of the paper),
//! * [`plan`] — join-graph shape classification (GYO
//!   ear-removal, acyclic vs cyclic) and the per-query cost model choosing
//!   between the paper's pipeline-of-rewrites and a one-shot hypercube
//!   placement with per-attribute shares ([`plan_query`]),
//! * [`WindowSpec`] — sliding/tumbling window declarations (Section 5),
//! * [`fingerprint`] / [`subjoin_signature`] — canonical fingerprints of a
//!   query's sub-join structure (`FROM` + `WHERE` + window, `SELECT`
//!   abstracted away), the collision test used by shared multi-query
//!   evaluation.
//!
//! # The compile pipeline
//!
//! Query evaluation goes through three representations:
//!
//! 1. **AST** — [`JoinQuery`], produced by [`parse_query`] or by a rewrite
//!    step. Constructor-validated ([`JoinQuery::new`]) for user input;
//!    unchecked for engine-internal construction.
//! 2. **Validated IR** — at compile time every attribute reference is
//!    checked against the `FROM` list (orphaned residue from unchecked
//!    construction is rejected) and resolved to a column offset against the
//!    catalog schema, yielding flat [`EmitStep`]/[`SelectStep`] sequences.
//! 3. **Program** — a [`SubJoinProgram`] (the projection-agnostic `WHERE`
//!    rewrite template, shareable across all subscribers of a fingerprinted
//!    sub-join) paired with a per-query `SELECT` plan in a
//!    [`CompiledTrigger`]. Executing a tuple is then a linear scan:
//!    pre-folded constant filters first, then self-join filters, then
//!    template emission — no AST walk, no string comparison, no schema
//!    lookup.
//!
//! The AST interpreter ([`rewrite`]) remains the semantics oracle: engines
//! run it when compiled predicates are disabled (`rjoin_core`'s
//! `with_compiled_predicates(false)`), differential tests assert program
//! results are byte-identical to it, and shared sub-join evaluation still
//! uses the name-based [`resolve_select_items`] for per-subscriber
//! projections.
//!
//! # Example
//!
//! ```
//! use rjoin_query::{parse_query, rewrite, RewriteResult};
//! use rjoin_relation::{Schema, Tuple, Value};
//!
//! let q = parse_query(
//!     "SELECT S.B, M.A FROM R, S, M WHERE R.A = S.A AND S.B = M.B",
//! ).unwrap();
//! assert_eq!(q.join_count(), 2);
//!
//! // A tuple of R arrives; the query loses one join.
//! let schema_r = Schema::new("R", ["A", "B", "C"]).unwrap();
//! let t = Tuple::new("R", vec![Value::from(2), Value::from(5), Value::from(8)], 0);
//! match rewrite(&q, &t, &schema_r).unwrap() {
//!     RewriteResult::Partial(q1) => assert_eq!(q1.join_count(), 1),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

mod ast;
mod compile;
mod error;
mod fingerprint;
mod keys;
mod parser;
pub mod plan;
mod rewrite;
mod window;

pub use ast::{Conjunct, EmitStep, JoinQuery, QualifiedAttr, SelectItem, SelectStep};
pub use compile::{compile_subjoin, compile_trigger, probe_pins, CompiledTrigger, SubJoinProgram};
pub use error::QueryError;
pub use fingerprint::{fingerprint, subjoin_signature, subjoin_signature_eq, Fingerprint};
pub use keys::{candidate_keys, tuple_index_keys, IndexKey, IndexLevel};
pub use parser::parse_query;
pub use plan::{
    allocate_shares, classify_shape, plan_query, HypercubeAxis, HypercubePlan, JoinGraph,
    QueryPlan, QueryShape,
};
pub use rewrite::{resolve_select_items, rewrite, RewriteResult};
pub use window::{WindowKind, WindowSpec};
