//! Sliding/tumbling window declarations (Section 5 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How the window duration is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WindowKind {
    /// Duration is a number of logical time units.
    Time,
    /// Duration is a number of tuple arrivals of the triggering relation.
    Tuples,
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowKind::Time => write!(f, "TIME"),
            WindowKind::Tuples => write!(f, "TUPLES"),
        }
    }
}

/// A window declaration attached to a continuous query.
///
/// The paper supports time-based and tuple-based *sliding* windows plus
/// tumbling windows, all implemented with purely local bookkeeping: a
/// rewritten query inherits `useWindows` and `window` from the query it was
/// derived from, records the publication time of the tuple that created it
/// as `start`, and is dropped by the node holding it as soon as a triggering
/// tuple falls outside `start + window`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WindowSpec {
    /// No window: every tuple published after the query combines with every
    /// other (the most demanding configuration, default in the paper's
    /// experiments).
    #[default]
    None,
    /// Sliding window of the given duration.
    Sliding {
        /// Window length.
        duration: u64,
        /// Whether the length counts time units or tuples.
        kind: WindowKind,
    },
    /// Tumbling window of the given duration: the window advances in fixed
    /// strides instead of sliding with each tuple.
    Tumbling {
        /// Window length (and stride).
        duration: u64,
        /// Whether the length counts time units or tuples.
        kind: WindowKind,
    },
}

impl WindowSpec {
    /// Convenience constructor for a time-based sliding window.
    pub fn sliding_time(duration: u64) -> Self {
        WindowSpec::Sliding { duration, kind: WindowKind::Time }
    }

    /// Convenience constructor for a tuple-based sliding window.
    pub fn sliding_tuples(duration: u64) -> Self {
        WindowSpec::Sliding { duration, kind: WindowKind::Tuples }
    }

    /// Convenience constructor for a time-based tumbling window.
    pub fn tumbling_time(duration: u64) -> Self {
        WindowSpec::Tumbling { duration, kind: WindowKind::Time }
    }

    /// Whether the query declares any window at all (the paper's
    /// `useWindows` flag).
    pub fn use_windows(&self) -> bool {
        !matches!(self, WindowSpec::None)
    }

    /// The declared duration, if a window is declared.
    pub fn duration(&self) -> Option<u64> {
        match self {
            WindowSpec::None => None,
            WindowSpec::Sliding { duration, .. } | WindowSpec::Tumbling { duration, .. } => {
                Some(*duration)
            }
        }
    }

    /// The unit in which the duration is measured, if a window is declared.
    pub fn kind(&self) -> Option<WindowKind> {
        match self {
            WindowSpec::None => None,
            WindowSpec::Sliding { kind, .. } | WindowSpec::Tumbling { kind, .. } => Some(*kind),
        }
    }

    /// Whether two events at positions `start` and `now` (in the window's
    /// unit — time or tuple count) fall within the same window.
    ///
    /// This implements the validity test of Section 5:
    /// `|start - now| + 1 <= window`. For tumbling windows the test is that
    /// both positions fall in the same fixed-size bucket.
    pub fn within(&self, start: u64, now: u64) -> bool {
        match self {
            WindowSpec::None => true,
            WindowSpec::Sliding { duration, .. } => {
                let span = start.abs_diff(now);
                span.saturating_add(1) <= *duration
            }
            WindowSpec::Tumbling { duration, .. } => {
                if *duration == 0 {
                    return false;
                }
                start / duration == now / duration
            }
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::None => write!(f, "WINDOW NONE"),
            WindowSpec::Sliding { duration, kind } => {
                write!(f, "WINDOW SLIDING {duration} {kind}")
            }
            WindowSpec::Tumbling { duration, kind } => {
                write!(f, "WINDOW TUMBLING {duration} {kind}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_window_accepts_everything() {
        assert!(WindowSpec::None.within(0, u64::MAX));
        assert!(!WindowSpec::None.use_windows());
        assert_eq!(WindowSpec::None.duration(), None);
        assert_eq!(WindowSpec::None.kind(), None);
    }

    #[test]
    fn sliding_window_boundary() {
        let w = WindowSpec::sliding_tuples(100);
        assert!(w.use_windows());
        assert_eq!(w.duration(), Some(100));
        assert_eq!(w.kind(), Some(WindowKind::Tuples));
        // |start-now|+1 <= 100
        assert!(w.within(10, 10));
        assert!(w.within(10, 109)); // span 99 + 1 = 100
        assert!(!w.within(10, 110)); // span 100 + 1 = 101
                                     // The test is symmetric in start/now (the paper uses an absolute value).
        assert!(w.within(109, 10));
        assert!(!w.within(110, 10));
    }

    #[test]
    fn sliding_window_of_one_only_same_instant() {
        let w = WindowSpec::sliding_time(1);
        assert!(w.within(5, 5));
        assert!(!w.within(5, 6));
    }

    #[test]
    fn tumbling_window_buckets() {
        let w = WindowSpec::tumbling_time(10);
        assert!(w.within(0, 9));
        assert!(!w.within(9, 10));
        assert!(w.within(10, 19));
        assert!(!w.within(19, 20));
    }

    #[test]
    fn zero_duration_tumbling_rejects() {
        let w = WindowSpec::Tumbling { duration: 0, kind: WindowKind::Time };
        assert!(!w.within(0, 0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(WindowSpec::sliding_tuples(50).to_string(), "WINDOW SLIDING 50 TUPLES");
        assert_eq!(WindowSpec::tumbling_time(5).to_string(), "WINDOW TUMBLING 5 TIME");
    }
}
