//! Abstract syntax of continuous multi-way equi-join queries.

use crate::{QueryError, WindowSpec};
use rjoin_relation::{AttrIndex, Catalog, Name, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A `Relation.Attribute` expression appearing in a query.
///
/// Both components are cheaply clonable [`Name`]s: attribute references are
/// cloned on every rewrite step and every stored sub-join, so a clone must
/// be a reference-count bump, not a pair of heap allocations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QualifiedAttr {
    /// Relation name.
    pub relation: Name,
    /// Attribute name.
    pub attribute: Name,
}

impl QualifiedAttr {
    /// Convenience constructor.
    pub fn new<R: Into<Name>, A: Into<Name>>(relation: R, attribute: A) -> Self {
        QualifiedAttr { relation: relation.into(), attribute: attribute.into() }
    }
}

impl fmt::Display for QualifiedAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.relation, self.attribute)
    }
}

/// An item of the `SELECT` list.
///
/// In an input query every item is an attribute reference; as the query is
/// rewritten with incoming tuples, attribute references are progressively
/// replaced by the constants carried by those tuples (see the `q2 = select
/// 5, S.B from ...` example in Section 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectItem {
    /// A still-unresolved `Relation.Attribute` reference.
    Attr(QualifiedAttr),
    /// A constant produced by a previous rewriting step.
    Const(Value),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Attr(a) => write!(f, "{a}"),
            SelectItem::Const(v) => write!(f, "{v}"),
        }
    }
}

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Conjunct {
    /// An equi-join predicate `R.A = S.B` between two different relations.
    JoinEq(QualifiedAttr, QualifiedAttr),
    /// A selection predicate `R.A = v` (either written by the user or
    /// produced by rewriting a join predicate with an incoming tuple).
    ConstEq(QualifiedAttr, Value),
}

impl Conjunct {
    /// All attribute references appearing in this conjunct.
    pub fn attrs(&self) -> Vec<&QualifiedAttr> {
        match self {
            Conjunct::JoinEq(a, b) => vec![a, b],
            Conjunct::ConstEq(a, _) => vec![a],
        }
    }

    /// Whether this conjunct mentions `relation`.
    pub fn mentions(&self, relation: &str) -> bool {
        self.attrs().iter().any(|a| a.relation == relation)
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Conjunct::JoinEq(a, b) => write!(f, "{a} = {b}"),
            Conjunct::ConstEq(a, v) => write!(f, "{a} = {v}"),
        }
    }
}

/// One step of a compiled `WHERE` rewrite template (see
/// [`crate::compile_subjoin`]).
///
/// A trigger program pre-computes, per source conjunct, what the rewrite of
/// a tuple of the trigger relation does to it: constant and self-join
/// conjuncts over the trigger relation become up-front filters (they never
/// reach the emitted child), and everything else becomes one `EmitStep` in
/// source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmitStep {
    /// Re-emit this conjunct unchanged — it does not mention the trigger
    /// relation, so the rewrite cannot touch it.
    Keep(Conjunct),
    /// A join conjunct with exactly one side on the trigger relation: emit
    /// `ConstEq(attr, tuple[offset])`, folding the trigger side to the
    /// constant carried by the tuple.
    ConstFrom {
        /// The surviving (non-trigger) side of the join conjunct.
        attr: QualifiedAttr,
        /// Column offset of the trigger-relation side, resolved against the
        /// catalog schema at compile time.
        offset: AttrIndex,
    },
}

/// One step of a compiled `SELECT` resolution plan (see [`crate::compile_subjoin`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectStep {
    /// Re-emit this item unchanged (a constant, or an attribute of another
    /// relation).
    Keep(SelectItem),
    /// An attribute of the trigger relation: resolve it to
    /// `tuple[offset]`.
    Resolve(AttrIndex),
}

/// A continuous multi-way equi-join query.
///
/// The same structure represents both *input queries* (as submitted by a
/// node) and *rewritten queries* (produced by RJoin's incremental
/// evaluation): a rewritten query simply has fewer relations in its `FROM`
/// list, fewer join conjuncts, and some `SELECT` items already resolved to
/// constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinQuery {
    distinct: bool,
    select: Vec<SelectItem>,
    relations: Vec<Name>,
    conjuncts: Vec<Conjunct>,
    window: WindowSpec,
}

impl JoinQuery {
    /// Builds a query from its parts, validating internal consistency:
    ///
    /// * the `FROM` list must be non-empty and free of duplicates
    ///   (self-joins are not supported, matching the paper's workload where
    ///   adjacent joins share a relation but each relation appears once),
    /// * every attribute referenced by `SELECT` or `WHERE` must belong to a
    ///   relation in the `FROM` list,
    /// * join conjuncts must relate two *different* relations.
    pub fn new(
        distinct: bool,
        select: Vec<SelectItem>,
        relations: Vec<Name>,
        conjuncts: Vec<Conjunct>,
        window: WindowSpec,
    ) -> Result<Self, QueryError> {
        if relations.is_empty() {
            return Err(QueryError::EmptyFrom);
        }
        let mut seen = BTreeSet::new();
        for r in &relations {
            if !seen.insert(r.clone()) {
                return Err(QueryError::DuplicateRelation { relation: r.to_string() });
            }
        }
        if select.is_empty() {
            return Err(QueryError::EmptySelect);
        }
        let check_attr = |attr: &QualifiedAttr| -> Result<(), QueryError> {
            if seen.contains(&attr.relation) {
                Ok(())
            } else {
                Err(QueryError::UnknownQueryRelation { attr: attr.clone() })
            }
        };
        for item in &select {
            if let SelectItem::Attr(a) = item {
                check_attr(a)?;
            }
        }
        for c in &conjuncts {
            match c {
                Conjunct::JoinEq(a, b) => {
                    check_attr(a)?;
                    check_attr(b)?;
                    if a.relation == b.relation {
                        return Err(QueryError::SelfJoin { attr: a.clone() });
                    }
                }
                Conjunct::ConstEq(a, _) => check_attr(a)?,
            }
        }
        Ok(JoinQuery { distinct, select, relations, conjuncts, window })
    }

    /// Whether this query requests set semantics (`SELECT DISTINCT`).
    pub fn distinct(&self) -> bool {
        self.distinct
    }

    /// The `SELECT` list.
    pub fn select(&self) -> &[SelectItem] {
        &self.select
    }

    /// Relations still present in the `FROM` list.
    pub fn relations(&self) -> &[Name] {
        &self.relations
    }

    /// The `WHERE` conjuncts.
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// The window declaration of the query.
    pub fn window(&self) -> &WindowSpec {
        &self.window
    }

    /// Replaces the window declaration (used by workload generators).
    pub fn with_window(mut self, window: WindowSpec) -> Self {
        self.window = window;
        self
    }

    /// Replaces the `SELECT` list, validating that every attribute reference
    /// belongs to a relation of the `FROM` list. Used by the overlapping
    /// workload generator (same sub-join, different projections) and by
    /// shared sub-join evaluation when a subscriber's projection is promoted
    /// to be the representative one.
    pub fn with_select(mut self, select: Vec<SelectItem>) -> Result<Self, QueryError> {
        if select.is_empty() {
            return Err(QueryError::EmptySelect);
        }
        for item in &select {
            if let SelectItem::Attr(a) = item {
                if !self.relations.contains(&a.relation) {
                    return Err(QueryError::UnknownQueryRelation { attr: a.clone() });
                }
            }
        }
        self.select = select;
        Ok(self)
    }

    /// Number of equi-join conjuncts remaining in the `WHERE` clause.
    pub fn join_count(&self) -> usize {
        self.conjuncts.iter().filter(|c| matches!(c, Conjunct::JoinEq(..))).count()
    }

    /// Whether the query mentions `relation` in its `FROM` list.
    pub fn references_relation(&self, relation: &str) -> bool {
        self.relations.iter().any(|r| r == relation)
    }

    /// Whether the `WHERE` clause is (equivalent to) `true`, i.e. all joins
    /// and selections have been resolved. For a well-formed rewritten query
    /// this coincides with the `FROM` list being empty.
    pub fn is_complete(&self) -> bool {
        self.conjuncts.is_empty() && self.relations.is_empty()
    }

    /// If the query is complete, returns the answer row: all `SELECT` items
    /// as constants. Returns `None` if any item is still unresolved.
    pub fn answer_row(&self) -> Option<Vec<Value>> {
        if !self.is_complete() {
            return None;
        }
        self.select
            .iter()
            .map(|item| match item {
                SelectItem::Const(v) => Some(v.clone()),
                SelectItem::Attr(_) => None,
            })
            .collect()
    }

    /// Validates this query against a catalog: every referenced relation
    /// must be registered and every referenced attribute must exist in the
    /// corresponding schema.
    pub fn validate(&self, catalog: &Catalog) -> Result<(), QueryError> {
        for r in &self.relations {
            catalog.require_schema(r).map_err(QueryError::Relation)?;
        }
        let check = |attr: &QualifiedAttr| -> Result<(), QueryError> {
            let schema = catalog.require_schema(&attr.relation).map_err(QueryError::Relation)?;
            schema.require_attribute(&attr.attribute).map_err(QueryError::Relation)?;
            Ok(())
        };
        for item in &self.select {
            if let SelectItem::Attr(a) = item {
                check(a)?;
            }
        }
        for c in &self.conjuncts {
            for a in c.attrs() {
                check(a)?;
            }
        }
        Ok(())
    }

    /// Internal constructor used by the rewriting engine; skips validation
    /// because the rewriting step preserves well-formedness by construction.
    pub(crate) fn from_parts_unchecked(
        distinct: bool,
        select: Vec<SelectItem>,
        relations: Vec<Name>,
        conjuncts: Vec<Conjunct>,
        window: WindowSpec,
    ) -> Self {
        JoinQuery { distinct, select, relations, conjuncts, window }
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.relations.is_empty() {
            write!(f, " FROM {}", self.relations.join(", "))?;
        }
        if !self.conjuncts.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conjuncts.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        match &self.window {
            WindowSpec::None => {}
            w => write!(f, " {w}")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(r: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(r, a)
    }

    fn three_way() -> JoinQuery {
        JoinQuery::new(
            false,
            vec![SelectItem::Attr(attr("R", "B")), SelectItem::Attr(attr("S", "B"))],
            vec!["R".into(), "S".into(), "P".into()],
            vec![
                Conjunct::JoinEq(attr("R", "A"), attr("S", "A")),
                Conjunct::JoinEq(attr("S", "B"), attr("P", "B")),
            ],
            WindowSpec::None,
        )
        .unwrap()
    }

    #[test]
    fn builds_and_reports_join_count() {
        let q = three_way();
        assert_eq!(q.join_count(), 2);
        assert!(q.references_relation("P"));
        assert!(!q.references_relation("Z"));
        assert!(!q.is_complete());
        assert!(q.answer_row().is_none());
    }

    #[test]
    fn rejects_empty_from() {
        let err = JoinQuery::new(
            false,
            vec![SelectItem::Const(Value::from(1))],
            vec![],
            vec![],
            WindowSpec::None,
        )
        .unwrap_err();
        assert_eq!(err, QueryError::EmptyFrom);
    }

    #[test]
    fn rejects_empty_select() {
        let err =
            JoinQuery::new(false, vec![], vec!["R".into()], vec![], WindowSpec::None).unwrap_err();
        assert_eq!(err, QueryError::EmptySelect);
    }

    #[test]
    fn rejects_duplicate_from_relation() {
        let err = JoinQuery::new(
            false,
            vec![SelectItem::Attr(attr("R", "A"))],
            vec!["R".into(), "R".into()],
            vec![],
            WindowSpec::None,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateRelation { .. }));
    }

    #[test]
    fn rejects_attr_outside_from() {
        let err = JoinQuery::new(
            false,
            vec![SelectItem::Attr(attr("Z", "A"))],
            vec!["R".into()],
            vec![],
            WindowSpec::None,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::UnknownQueryRelation { .. }));
    }

    #[test]
    fn rejects_self_join() {
        let err = JoinQuery::new(
            false,
            vec![SelectItem::Attr(attr("R", "A"))],
            vec!["R".into(), "S".into()],
            vec![Conjunct::JoinEq(attr("R", "A"), attr("R", "B"))],
            WindowSpec::None,
        )
        .unwrap_err();
        assert!(matches!(err, QueryError::SelfJoin { .. }));
    }

    #[test]
    fn with_select_validates_relations() {
        let q = three_way();
        let swapped = q
            .clone()
            .with_select(vec![SelectItem::Attr(attr("P", "B")), SelectItem::Const(Value::from(1))])
            .unwrap();
        assert_eq!(swapped.select().len(), 2);
        assert_eq!(swapped.conjuncts(), q.conjuncts());
        assert!(q.clone().with_select(vec![]).is_err());
        assert!(matches!(
            q.with_select(vec![SelectItem::Attr(attr("Z", "A"))]).unwrap_err(),
            QueryError::UnknownQueryRelation { .. }
        ));
    }

    #[test]
    fn complete_query_yields_answer_row() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Const(Value::from(6)), SelectItem::Const(Value::from(9))],
            vec![],
            vec![],
            WindowSpec::None,
        );
        assert!(q.is_complete());
        assert_eq!(q.answer_row(), Some(vec![Value::from(6), Value::from(9)]));
    }

    #[test]
    fn validate_against_catalog() {
        use rjoin_relation::Schema;
        let mut catalog = Catalog::new();
        catalog.register(Schema::new("R", ["A", "B"]).unwrap()).unwrap();
        catalog.register(Schema::new("S", ["A", "B"]).unwrap()).unwrap();
        catalog.register(Schema::new("P", ["B"]).unwrap()).unwrap();
        assert!(three_way().validate(&catalog).is_ok());

        let mut small = Catalog::new();
        small.register(Schema::new("R", ["A"]).unwrap()).unwrap();
        assert!(three_way().validate(&small).is_err());
    }

    #[test]
    fn display_round_trippable_shape() {
        let q = three_way();
        let s = q.to_string();
        assert!(s.starts_with("SELECT R.B, S.B FROM R, S, P WHERE "));
        assert!(s.contains("R.A = S.A AND S.B = P.B"));
    }

    #[test]
    fn conjunct_mentions() {
        let c = Conjunct::JoinEq(attr("R", "A"), attr("S", "B"));
        assert!(c.mentions("R"));
        assert!(c.mentions("S"));
        assert!(!c.mentions("P"));
        let k = Conjunct::ConstEq(attr("R", "A"), Value::from(1));
        assert!(k.mentions("R"));
        assert!(!k.mentions("S"));
    }
}
