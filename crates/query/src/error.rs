//! Error types for query construction, parsing and rewriting.

use crate::ast::QualifiedAttr;
use rjoin_relation::RelationError;
use std::fmt;

/// Errors raised by query construction, validation, parsing or rewriting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The `FROM` clause is empty.
    EmptyFrom,
    /// The `SELECT` list is empty.
    EmptySelect,
    /// The same relation appears twice in the `FROM` clause.
    DuplicateRelation {
        /// The repeated relation name.
        relation: String,
    },
    /// An attribute references a relation that is not in the `FROM` clause.
    UnknownQueryRelation {
        /// The offending attribute reference.
        attr: QualifiedAttr,
    },
    /// A join conjunct relates a relation to itself (self-joins are not
    /// supported).
    SelfJoin {
        /// One side of the offending conjunct.
        attr: QualifiedAttr,
    },
    /// A relation/attribute failed catalog validation.
    Relation(RelationError),
    /// The SQL text could not be parsed.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset in the input where the problem was detected.
        position: usize,
    },
    /// `rewrite` was invoked with a tuple whose relation is not part of the
    /// query's `FROM` clause.
    IrrelevantTuple {
        /// Relation of the tuple.
        relation: String,
    },
    /// `rewrite` was invoked with a schema that does not match the tuple.
    SchemaMismatch {
        /// Relation of the tuple.
        tuple_relation: String,
        /// Relation of the supplied schema.
        schema_relation: String,
    },
    /// An attribute in the query does not exist in the supplied schema.
    UnknownAttribute {
        /// The offending attribute reference.
        attr: QualifiedAttr,
    },
    /// A tuple carries fewer values than the resolved column offset of an
    /// attribute requires. Distinct from [`UnknownAttribute`]: the attribute
    /// name *is* part of the schema, but the tuple is arity-short, which
    /// points at a malformed tuple (or a compiled-program offset bug), not a
    /// schema typo.
    ///
    /// [`UnknownAttribute`]: QueryError::UnknownAttribute
    ArityMismatch {
        /// The attribute whose resolved offset was out of range.
        attr: QualifiedAttr,
        /// The column offset that was probed.
        index: usize,
        /// The tuple's actual arity.
        arity: usize,
    },
    /// The query's join graph contains a cycle (e.g. `R.A = S.A AND
    /// S.B = T.B AND T.C = R.C`) and the hypercube planner is disabled: the
    /// rewrite pipeline has no plan for cyclic shapes, so the query is
    /// rejected outright rather than silently dropping the cycle-closing
    /// conjunct or looping through rewrite stages.
    CyclicShape,
    /// Rewriting resolved the whole `WHERE` clause (and emptied the `FROM`
    /// list) while a `SELECT` item is still an unresolved attribute
    /// reference — the query can never produce its answer row. Only queries
    /// built without validation (deserialization, unchecked construction)
    /// can reach this state; the constructor requires every `SELECT`
    /// attribute to belong to a `FROM` relation.
    UnresolvedSelect {
        /// The `SELECT` item that can no longer be resolved.
        attr: QualifiedAttr,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyFrom => write!(f, "the FROM clause is empty"),
            QueryError::EmptySelect => write!(f, "the SELECT list is empty"),
            QueryError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` appears more than once in FROM")
            }
            QueryError::UnknownQueryRelation { attr } => {
                write!(f, "attribute `{attr}` references a relation that is not in FROM")
            }
            QueryError::SelfJoin { attr } => {
                write!(f, "self-joins are not supported (conjunct involving `{attr}`)")
            }
            QueryError::Relation(e) => write!(f, "{e}"),
            QueryError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            QueryError::IrrelevantTuple { relation } => {
                write!(f, "tuple of relation `{relation}` is not referenced by the query")
            }
            QueryError::SchemaMismatch { tuple_relation, schema_relation } => {
                write!(
                    f,
                    "tuple belongs to `{tuple_relation}` but schema describes `{schema_relation}`"
                )
            }
            QueryError::UnknownAttribute { attr } => {
                write!(f, "attribute `{attr}` does not exist in the relation schema")
            }
            QueryError::ArityMismatch { attr, index, arity } => {
                write!(
                    f,
                    "attribute `{attr}` resolves to column {index} but the tuple only carries \
                     {arity} values"
                )
            }
            QueryError::CyclicShape => {
                write!(f, "the query's join graph is cyclic and the hypercube planner is disabled")
            }
            QueryError::UnresolvedSelect { attr } => {
                write!(
                    f,
                    "WHERE clause is fully resolved but SELECT item `{attr}` is still an \
                     attribute reference"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for QueryError {
    fn from(e: RelationError) -> Self {
        QueryError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let err = QueryError::Parse { message: "expected FROM".into(), position: 12 };
        assert!(err.to_string().contains("12"));
        assert!(err.to_string().contains("expected FROM"));
    }

    #[test]
    fn relation_error_wraps_with_source() {
        use std::error::Error;
        let err: QueryError = RelationError::UnknownRelation { relation: "R".into() }.into();
        assert!(err.source().is_some());
    }
}
