//! Compilation of the per-tuple rewrite into flat predicate programs.
//!
//! [`rewrite`](crate::rewrite()) walks the query AST for every
//! (tuple, stored query) pair: it compares relation names as strings,
//! resolves attribute names against the schema by linear scan, and clones
//! conjuncts one by one. That walk is the inner loop of Procedures 1–3 — a
//! node with `n` stored queries on a ring key performs it `n` times per
//! delivery.
//!
//! This module compiles the walk away. For a given (query, trigger relation)
//! pair, the *shape* of the rewrite is fixed: which conjuncts drop, which
//! become `ConstEq`, which `SELECT` slots resolve, and which column offsets
//! feed them depend only on the query and the schema — not on the tuple.
//! [`compile_subjoin`] precomputes that shape once into a [`SubJoinProgram`]:
//!
//! * constant selections over the trigger relation become
//!   [`const_filters`](SubJoinProgram) — offset/value pairs checked first,
//!   so a non-matching tuple is rejected before any allocation,
//! * self-join conjuncts (`R.A = R.B`, from unchecked construction) become
//!   offset/offset `self_filters`,
//! * every surviving conjunct becomes an [`EmitStep`] and every `SELECT`
//!   item a [`SelectStep`], so executing a tuple is a linear scan over flat
//!   vectors instead of an AST walk.
//!
//! The `WHERE`-side program is `SELECT`-agnostic, mirroring the fingerprint
//! abstraction of shared sub-joins: all subscribers of a structurally
//! identical sub-join share one `SubJoinProgram` (cached by fingerprint in
//! the node state), and each stored query pairs it with its own cheap
//! [`CompiledTrigger`] select plan.
//!
//! Compilation also validates what unchecked construction (deserialization,
//! the rewriting engine itself) cannot: every attribute reference must
//! belong to a `FROM` relation. Orphaned residue — a conjunct or `SELECT`
//! item over a relation absent from `FROM` — is rejected with
//! [`QueryError::UnknownQueryRelation`] instead of being dragged along as a
//! child query that can never complete.

use crate::ast::{Conjunct, EmitStep, JoinQuery, QualifiedAttr, SelectItem, SelectStep};
use crate::rewrite::RewriteResult;
use crate::{QueryError, WindowSpec};
use rjoin_relation::{AttrIndex, Name, Schema, Tuple, Value};
use std::sync::Arc;

/// The `SELECT`-agnostic half of a compiled trigger: the rewrite template
/// for tuples of one relation against one sub-join shape.
///
/// Cacheable by fingerprint (see `rjoin_core`): fingerprints abstract the
/// `SELECT` list exactly like this program does, so all subscribers of a
/// shared sub-join reuse one program. Fingerprint hits are candidates only —
/// use [`matches_source`](SubJoinProgram::matches_source) to confirm
/// structural equality before reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubJoinProgram {
    relation: String,
    /// Minimum tuple arity required by the `WHERE`-side offsets, together
    /// with the attribute reference that demands it (for error reporting).
    min_arity: usize,
    widest: Option<QualifiedAttr>,
    /// `ConstEq` conjuncts over the trigger relation, pre-resolved to
    /// column offsets. Checked before anything is allocated.
    const_filters: Vec<(AttrIndex, Value)>,
    /// Self-join conjuncts over the trigger relation (offset pairs).
    self_filters: Vec<(AttrIndex, AttrIndex)>,
    /// Surviving conjuncts in source order.
    emit: Vec<EmitStep>,
    /// The child's `FROM` list: the source `FROM` minus the trigger
    /// relation, in source order.
    remaining: Vec<Name>,
    distinct: bool,
    window: WindowSpec,
    /// Source identity, retained so a fingerprint-cache hit can be
    /// confirmed by direct comparison instead of re-walking signatures.
    source_relations: Vec<Name>,
    source_conjuncts: Vec<Conjunct>,
}

impl SubJoinProgram {
    /// The trigger relation this program rewrites tuples of.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The program's discriminating probe key, if it has one: the first
    /// pre-folded constant filter, as a (column offset, expected value)
    /// pair. A tuple whose column `offset` differs from `value` is rejected
    /// by [`execute`](CompiledTrigger::execute) before anything else runs,
    /// so a trigger index that partitions stored entries by this pin only
    /// has to probe the entries whose pin matches the arriving tuple.
    /// `None` for unpinned programs (no tuple-resolvable equality over the
    /// trigger relation) — those must still be walked.
    ///
    /// Agrees with [`probe_pins`] by construction: [`compile_subjoin`]
    /// folds exactly the `ConstEq` conjuncts over the trigger relation into
    /// `const_filters`, in conjunct source order, so the first filter here
    /// is the first pin there resolved against the schema.
    pub fn probe_key(&self) -> Option<(AttrIndex, &Value)> {
        self.const_filters.first().map(|(offset, value)| (*offset, value))
    }

    /// Whether this program was compiled from exactly this sub-join shape
    /// for `relation`. `SELECT` lists are deliberately ignored — the
    /// `WHERE`-side template is projection-agnostic.
    pub fn matches_source(&self, query: &JoinQuery, relation: &str) -> bool {
        self.relation == relation
            && self.distinct == query.distinct()
            && self.window == *query.window()
            && self.source_relations == query.relations()
            && self.source_conjuncts == query.conjuncts()
    }
}

/// Compiles the `WHERE`-side rewrite template of `query` for tuples whose
/// schema is `schema`.
///
/// Fails with the same errors the interpreter would raise on the first
/// matching tuple ([`QueryError::IrrelevantTuple`],
/// [`QueryError::UnknownAttribute`]) plus the orphaned-residue validation
/// described in the module docs ([`QueryError::UnknownQueryRelation`]).
pub fn compile_subjoin(query: &JoinQuery, schema: &Schema) -> Result<SubJoinProgram, QueryError> {
    let relation = schema.relation();
    if !query.references_relation(relation) {
        return Err(QueryError::IrrelevantTuple { relation: relation.to_string() });
    }

    let mut min_arity = 0usize;
    let mut widest = None;
    let mut resolve = |attr: &QualifiedAttr| -> Result<AttrIndex, QueryError> {
        let idx = schema
            .index_of(&attr.attribute)
            .ok_or_else(|| QueryError::UnknownAttribute { attr: attr.clone() })?;
        if idx + 1 > min_arity {
            min_arity = idx + 1;
            widest = Some(attr.clone());
        }
        Ok(idx)
    };
    let check_in_from = |attr: &QualifiedAttr| -> Result<(), QueryError> {
        if query.references_relation(&attr.relation) {
            Ok(())
        } else {
            Err(QueryError::UnknownQueryRelation { attr: attr.clone() })
        }
    };

    let mut const_filters = Vec::new();
    let mut self_filters = Vec::new();
    let mut emit = Vec::new();
    for conjunct in query.conjuncts() {
        match conjunct {
            Conjunct::JoinEq(a, b) => {
                let a_here = a.relation == relation;
                let b_here = b.relation == relation;
                if a_here && b_here {
                    self_filters.push((resolve(a)?, resolve(b)?));
                } else if a_here {
                    check_in_from(b)?;
                    emit.push(EmitStep::ConstFrom { attr: b.clone(), offset: resolve(a)? });
                } else if b_here {
                    check_in_from(a)?;
                    emit.push(EmitStep::ConstFrom { attr: a.clone(), offset: resolve(b)? });
                } else {
                    check_in_from(a)?;
                    check_in_from(b)?;
                    emit.push(EmitStep::Keep(conjunct.clone()));
                }
            }
            Conjunct::ConstEq(a, expected) => {
                if a.relation == relation {
                    const_filters.push((resolve(a)?, expected.clone()));
                } else {
                    check_in_from(a)?;
                    emit.push(EmitStep::Keep(conjunct.clone()));
                }
            }
        }
    }

    let remaining: Vec<Name> =
        query.relations().iter().filter(|r| r.as_str() != relation).cloned().collect();

    Ok(SubJoinProgram {
        relation: relation.to_string(),
        min_arity,
        widest,
        const_filters,
        self_filters,
        emit,
        remaining,
        distinct: query.distinct(),
        window: *query.window(),
        source_relations: query.relations().to_vec(),
        source_conjuncts: query.conjuncts().to_vec(),
    })
}

/// The tuple-resolvable equality pins of `query` for tuples of `relation`,
/// in conjunct source order: every `ConstEq` conjunct over `relation`, as
/// the (attribute, expected value) pairs a trigger index can partition
/// stored queries by. A tuple of `relation` can only trigger `query` if it
/// carries every listed value at the listed attribute — the same pre-folded
/// filters [`compile_subjoin`] hoists to the front of the compiled program
/// (and in the same order, which is what keeps the AST-level extraction
/// here and [`SubJoinProgram::probe_key`] in agreement).
///
/// Usable before any program exists: stored queries are indexed at store
/// time, while programs are compiled lazily at first trigger.
pub fn probe_pins<'a>(
    query: &'a JoinQuery,
    relation: &'a str,
) -> impl Iterator<Item = (&'a QualifiedAttr, &'a Value)> + 'a {
    query.conjuncts().iter().filter_map(move |conjunct| match conjunct {
        Conjunct::ConstEq(attr, value) if attr.relation == relation => Some((attr, value)),
        _ => None,
    })
}

/// A complete compiled trigger: a shared [`SubJoinProgram`] plus the
/// per-query `SELECT` resolution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTrigger {
    shared: Arc<SubJoinProgram>,
    select: Vec<SelectStep>,
    /// Minimum tuple arity over *both* the `WHERE` and `SELECT` offsets.
    min_arity: usize,
    widest: Option<QualifiedAttr>,
}

impl CompiledTrigger {
    /// Pairs an already compiled (possibly cache-shared) `WHERE` program
    /// with the `SELECT` plan of `query`.
    ///
    /// The caller must have confirmed `shared`
    /// [`matches_source`](SubJoinProgram::matches_source) for this query.
    pub fn new(
        shared: Arc<SubJoinProgram>,
        query: &JoinQuery,
        schema: &Schema,
    ) -> Result<Self, QueryError> {
        let relation = schema.relation();
        let mut min_arity = shared.min_arity;
        let mut widest = shared.widest.clone();
        let mut select = Vec::with_capacity(query.select().len());
        for item in query.select() {
            match item {
                SelectItem::Attr(a) if a.relation == relation => {
                    let idx = schema
                        .index_of(&a.attribute)
                        .ok_or_else(|| QueryError::UnknownAttribute { attr: a.clone() })?;
                    if idx + 1 > min_arity {
                        min_arity = idx + 1;
                        widest = Some(a.clone());
                    }
                    select.push(SelectStep::Resolve(idx));
                }
                SelectItem::Attr(a) => {
                    if !query.references_relation(&a.relation) {
                        return Err(QueryError::UnknownQueryRelation { attr: a.clone() });
                    }
                    select.push(SelectStep::Keep(item.clone()));
                }
                SelectItem::Const(_) => select.push(SelectStep::Keep(item.clone())),
            }
        }
        Ok(CompiledTrigger { shared, select, min_arity, widest })
    }

    /// The trigger relation this program rewrites tuples of.
    pub fn relation(&self) -> &str {
        self.shared.relation()
    }

    /// The shared `WHERE`-side program (for cache bookkeeping).
    pub fn shared(&self) -> &Arc<SubJoinProgram> {
        &self.shared
    }

    /// Executes the program against one tuple of the trigger relation.
    ///
    /// Produces the same [`RewriteResult`] as the AST interpreter
    /// ([`rewrite`](crate::rewrite())) on every valid (query, tuple) pair:
    /// same mismatches, byte-identical child queries and answer rows. The
    /// only divergence is on arity-short tuples, where the interpreter
    /// reports the first out-of-range reference in conjunct order while the
    /// compiled program reports the widest one.
    pub fn execute(&self, tuple: &Tuple) -> Result<RewriteResult, QueryError> {
        let p = &*self.shared;
        let vals = tuple.values();
        if vals.len() < self.min_arity {
            let attr = self.widest.clone().expect("min_arity > 0 implies a widest reference");
            return Err(QueryError::ArityMismatch {
                attr,
                index: self.min_arity - 1,
                arity: vals.len(),
            });
        }
        for (idx, expected) in &p.const_filters {
            if vals[*idx] != *expected {
                return Ok(RewriteResult::Mismatch);
            }
        }
        for (a, b) in &p.self_filters {
            if vals[*a] != vals[*b] {
                return Ok(RewriteResult::Mismatch);
            }
        }

        if p.emit.is_empty() && p.remaining.is_empty() {
            // The child would be complete: build the answer row directly,
            // skipping query construction entirely.
            let mut row = Vec::with_capacity(self.select.len());
            for step in &self.select {
                match step {
                    SelectStep::Resolve(idx) => row.push(vals[*idx].clone()),
                    SelectStep::Keep(SelectItem::Const(v)) => row.push(v.clone()),
                    SelectStep::Keep(SelectItem::Attr(a)) => {
                        return Err(QueryError::UnresolvedSelect { attr: a.clone() });
                    }
                }
            }
            return Ok(RewriteResult::Complete(row));
        }

        let conjuncts: Vec<Conjunct> = p
            .emit
            .iter()
            .map(|step| match step {
                EmitStep::Keep(c) => c.clone(),
                EmitStep::ConstFrom { attr, offset } => {
                    Conjunct::ConstEq(attr.clone(), vals[*offset].clone())
                }
            })
            .collect();
        let select: Vec<SelectItem> = self
            .select
            .iter()
            .map(|step| match step {
                SelectStep::Keep(item) => item.clone(),
                SelectStep::Resolve(idx) => SelectItem::Const(vals[*idx].clone()),
            })
            .collect();
        Ok(RewriteResult::Partial(JoinQuery::from_parts_unchecked(
            p.distinct,
            select,
            p.remaining.clone(),
            conjuncts,
            p.window,
        )))
    }
}

/// Convenience: compiles the full trigger program (shared `WHERE` template
/// plus `SELECT` plan) for `query` and tuples of `schema` in one step.
pub fn compile_trigger(query: &JoinQuery, schema: &Schema) -> Result<CompiledTrigger, QueryError> {
    let shared = Arc::new(compile_subjoin(query, schema)?);
    CompiledTrigger::new(shared, query, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_query, rewrite};

    fn schema(rel: &str) -> Schema {
        Schema::new(rel, ["A", "B", "C"]).unwrap()
    }

    fn tuple(rel: &str, values: [i64; 3]) -> Tuple {
        Tuple::new(rel, values.iter().map(|v| Value::from(*v)).collect(), 0)
    }

    fn attr(r: &str, a: &str) -> QualifiedAttr {
        QualifiedAttr::new(r, a)
    }

    /// The Figure 1 chain of the paper, executed compiled and interpreted in
    /// lockstep: every intermediate child must be byte-identical.
    #[test]
    fn figure_one_chain_matches_interpreter() {
        let mut q = parse_query(
            "SELECT S.B, M.A FROM R, S, J, M WHERE R.A = S.A AND S.B = J.B AND J.C = M.C",
        )
        .unwrap();
        let steps = [
            tuple("R", [2, 5, 8]),
            tuple("S", [2, 6, 3]),
            tuple("J", [7, 6, 2]),
            tuple("M", [9, 1, 2]),
        ];
        for t in steps {
            let s = schema(t.relation());
            let interpreted = rewrite(&q, &t, &s).unwrap();
            let compiled = compile_trigger(&q, &s).unwrap().execute(&t).unwrap();
            assert_eq!(compiled, interpreted);
            match interpreted {
                RewriteResult::Partial(child) => q = child,
                RewriteResult::Complete(row) => {
                    assert_eq!(row, vec![Value::from(6), Value::from(9)]);
                    return;
                }
                RewriteResult::Mismatch => panic!("chain must not mismatch"),
            }
        }
        panic!("chain must complete");
    }

    #[test]
    fn const_filter_short_circuits_to_mismatch() {
        let q = parse_query("SELECT S.B FROM S, R WHERE S.A = 2 AND S.B = R.B").unwrap();
        let program = compile_trigger(&q, &schema("S")).unwrap();
        assert_eq!(program.execute(&tuple("S", [3, 6, 3])).unwrap(), RewriteResult::Mismatch);
        match program.execute(&tuple("S", [2, 6, 3])).unwrap() {
            RewriteResult::Partial(child) => {
                assert_eq!(child.conjuncts(), &[Conjunct::ConstEq(attr("R", "B"), Value::from(6))]);
                assert_eq!(child.relations(), &["R".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_join_conjuncts_become_filters() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Attr(attr("S", "B"))],
            vec!["R".into(), "S".into()],
            vec![
                Conjunct::JoinEq(attr("R", "A"), attr("R", "B")),
                Conjunct::JoinEq(attr("R", "C"), attr("S", "C")),
            ],
            WindowSpec::None,
        );
        let program = compile_trigger(&q, &schema("R")).unwrap();
        assert_eq!(program.execute(&tuple("R", [7, 8, 3])).unwrap(), RewriteResult::Mismatch);
        assert_eq!(
            program.execute(&tuple("R", [7, 7, 3])).unwrap(),
            rewrite(&q, &tuple("R", [7, 7, 3]), &schema("R")).unwrap()
        );
    }

    /// Satellite: orphaned residue — conjuncts over a relation absent from
    /// FROM — must be rejected at compile time, not dragged into children.
    #[test]
    fn orphaned_conjunct_is_rejected_at_compile_time() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Const(Value::from(1))],
            vec!["R".into(), "S".into()],
            vec![
                Conjunct::JoinEq(attr("R", "A"), attr("S", "A")),
                Conjunct::ConstEq(attr("Z", "B"), Value::from(5)),
            ],
            WindowSpec::None,
        );
        let err = compile_subjoin(&q, &schema("R")).unwrap_err();
        assert_eq!(err, QueryError::UnknownQueryRelation { attr: attr("Z", "B") });

        let join_orphan = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Const(Value::from(1))],
            vec!["R".into()],
            vec![Conjunct::JoinEq(attr("R", "A"), attr("Z", "A"))],
            WindowSpec::None,
        );
        let err = compile_subjoin(&join_orphan, &schema("R")).unwrap_err();
        assert_eq!(err, QueryError::UnknownQueryRelation { attr: attr("Z", "A") });
    }

    #[test]
    fn orphaned_select_is_rejected_at_compile_time() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Attr(attr("Z", "B"))],
            vec!["R".into()],
            vec![],
            WindowSpec::None,
        );
        let err = compile_trigger(&q, &schema("R")).unwrap_err();
        assert_eq!(err, QueryError::UnknownQueryRelation { attr: attr("Z", "B") });
    }

    #[test]
    fn arity_short_tuple_reports_arity_mismatch() {
        let q = parse_query("SELECT S.B FROM S, R WHERE S.C = R.A").unwrap();
        let program = compile_trigger(&q, &schema("S")).unwrap();
        let short = Tuple::new("S", vec![Value::from(1), Value::from(2)], 0);
        let err = program.execute(&short).unwrap_err();
        assert!(matches!(err, QueryError::ArityMismatch { index: 2, arity: 2, .. }));
    }

    #[test]
    fn irrelevant_relation_is_a_compile_error() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 2").unwrap();
        let err = compile_subjoin(&q, &schema("Z")).unwrap_err();
        assert!(matches!(err, QueryError::IrrelevantTuple { .. }));
    }

    #[test]
    fn matches_source_confirms_structure_and_ignores_select() {
        let q = parse_query("SELECT S.B FROM R, S WHERE R.A = S.A").unwrap();
        let program = compile_subjoin(&q, &schema("R")).unwrap();
        assert!(program.matches_source(&q, "R"));
        // Different SELECT, same sub-join: still a match (the template is
        // projection-agnostic, like the fingerprint).
        let other_select = parse_query("SELECT S.C FROM R, S WHERE R.A = S.A").unwrap();
        assert!(program.matches_source(&other_select, "R"));
        // Different trigger relation or structure: no match.
        assert!(!program.matches_source(&q, "S"));
        let other_where = parse_query("SELECT S.B FROM R, S WHERE R.B = S.B").unwrap();
        assert!(!program.matches_source(&other_where, "R"));
        let windowed =
            parse_query("SELECT S.B FROM R, S WHERE R.A = S.A WINDOW SLIDING 10 TUPLES").unwrap();
        assert!(!program.matches_source(&windowed, "R"));
    }

    #[test]
    fn unknown_attribute_is_a_compile_error() {
        let q = parse_query("SELECT S.Z FROM S, R WHERE S.Z = R.A").unwrap();
        let err = compile_trigger(&q, &schema("S")).unwrap_err();
        assert!(matches!(err, QueryError::UnknownAttribute { .. }));
    }

    /// The AST-level pin extraction and the compiled program's probe key
    /// must agree: same conjunct picked first, same value, and the offset
    /// is the schema resolution of the picked attribute.
    #[test]
    fn probe_pins_agree_with_compiled_probe_key() {
        let q =
            parse_query("SELECT S.C FROM S, R WHERE S.B = R.B AND S.A = 2 AND S.C = 7 AND R.A = 1")
                .unwrap();
        let s = schema("S");
        let pins: Vec<_> = probe_pins(&q, "S").collect();
        assert_eq!(pins.len(), 2);
        assert_eq!(pins[0], (&attr("S", "A"), &Value::from(2)));
        assert_eq!(pins[1], (&attr("S", "C"), &Value::from(7)));
        let program = compile_subjoin(&q, &s).unwrap();
        let (offset, value) = program.probe_key().expect("pinned program");
        assert_eq!(offset, s.index_of(&pins[0].0.attribute).unwrap());
        assert_eq!(value, pins[0].1);
        // The R-side pin belongs to R-triggered programs only.
        let r_pins: Vec<_> = probe_pins(&q, "R").collect();
        assert_eq!(r_pins, vec![(&attr("R", "A"), &Value::from(1))]);
        // A pure join query has no pins and an unpinned program.
        let unpinned = parse_query("SELECT S.B FROM S, R WHERE S.A = R.A").unwrap();
        assert_eq!(probe_pins(&unpinned, "S").count(), 0);
        assert!(compile_subjoin(&unpinned, &s).unwrap().probe_key().is_none());
    }

    #[test]
    fn complete_child_builds_answer_row_directly() {
        let q = parse_query("SELECT S.B, S.A FROM S WHERE S.A = 2").unwrap();
        let program = compile_trigger(&q, &schema("S")).unwrap();
        assert_eq!(
            program.execute(&tuple("S", [2, 6, 3])).unwrap(),
            RewriteResult::Complete(vec![Value::from(6), Value::from(2)])
        );
    }
}
