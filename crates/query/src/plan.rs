//! Query planning: join-graph shape classification and hypercube share
//! allocation.
//!
//! The paper's evaluation strategy (Sections 6–7) is a **pipeline of
//! rewrites**: each arriving tuple peels one relation off the query, and the
//! shrinking residue hops from index key to index key. That strategy is built
//! around *acyclic* conjunctive chains. A cycle-closing `WHERE` clause —
//! `R.A = S.A AND S.B = T.B AND T.C = R.C` — has no chain decomposition: no
//! single rewrite order covers the closing conjunct without revisiting a
//! relation, so cyclic shapes need a different plan.
//!
//! # The join graph and GYO classification
//!
//! The `WHERE` clause induces a **join graph**: its vertices are the
//! equivalence classes of join attributes (the transitive closure of the
//! `JoinEq` conjuncts, the same union-find [`crate::candidate_keys`] runs), and
//! each `FROM` relation contributes one hyperedge — the set of classes its
//! attributes participate in. Shape classification is textbook
//! **GYO ear removal**: repeatedly (a) delete every vertex contained in at
//! most one hyperedge and (b) delete every hyperedge contained in another,
//! until nothing changes. The query is **α-acyclic** iff the reduction
//! consumes every hyperedge; a non-empty residue is a cycle
//! ([`QueryShape::Cyclic`]).
//!
//! # The hypercube plan (shares)
//!
//! Cyclic shapes are planned as a **one-shot hypercube placement** in the
//! style of Afrati, Ullman & Vasilakopoulos: each join-attribute class
//! becomes one axis of a virtual grid of `s_1 × … × s_k` cells, and
//! [`allocate_shares`] apportions a cell budget across the axes — the
//! k-dimensional generalization of `rjoin_core::split::choose_grid`'s 2-D
//! tuple×Eval split. A tuple routes to the axis-aligned *subcube* fixed by
//! its bound attributes (hash of the attribute value on each axis its
//! relation participates in, replicated across the axes it does not); the
//! query replicates to **all** cells. Any full joining combination agrees on
//! every class value, so it pins every axis coordinate and its tuples
//! co-occur in **exactly one** cell — each answer is produced exactly once
//! without cross-cell coordination.
//!
//! # The cost model
//!
//! [`plan_query`] chooses between the two plans per query, in units of
//! query-placement messages: the pipeline pays one (re-)indexing hop per
//! rewrite stage (`joins + 1`), the hypercube pays one replicated cell
//! placement per cell. Cyclic shapes have no pipeline plan at all (their
//! pipeline cost is infinite); acyclic shapes take the hypercube only if it
//! is strictly cheaper, which under realistic budgets it never is — so the
//! paper's figures keep their pipeline trace while triangles, 4-cycles and
//! cliques become plannable instead of an error path. Tuple-side replication
//! is the hypercube's running cost and is reported through the engine's
//! planner counters, not folded into the one-shot placement comparison.

use crate::ast::{Conjunct, JoinQuery, QualifiedAttr};
use crate::keys::AttrUnionFind;
use rjoin_relation::Name;

/// The shape of a query's join graph under GYO reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// The join graph is α-acyclic: the paper's pipeline of rewrites covers
    /// it.
    Acyclic,
    /// The join graph contains a cycle: only the hypercube plan covers it.
    Cyclic,
}

/// One equivalence class of join attributes (one vertex of the join graph,
/// one axis of a hypercube plan). Members are sorted `(relation, attribute)`
/// and deduplicated, so the class list is deterministic for a given query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrClass {
    /// The attribute references equated by the `WHERE` closure.
    pub members: Vec<QualifiedAttr>,
}

impl AttrClass {
    /// Whether some member belongs to `relation`.
    pub fn binds(&self, relation: &str) -> bool {
        self.members.iter().any(|a| a.relation == relation)
    }
}

/// The join graph of a query: join-attribute equivalence classes as
/// vertices, relations as hyperedges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinGraph {
    /// The vertices: `JoinEq`-induced attribute equivalence classes.
    pub classes: Vec<AttrClass>,
    /// The hyperedges: per `FROM` relation, the sorted class indices its
    /// attributes participate in.
    pub relations: Vec<(Name, Vec<usize>)>,
}

impl JoinGraph {
    /// Builds the join graph of `query` from the transitive closure of its
    /// `JoinEq` conjuncts (`ConstEq` selections do not affect the topology).
    pub fn build(query: &JoinQuery) -> JoinGraph {
        let mut uf = AttrUnionFind::with_capacity(query.conjuncts().len() * 2);
        for conjunct in query.conjuncts() {
            if let Conjunct::JoinEq(a, b) = conjunct {
                let ia = uf.id(a);
                let ib = uf.id(b);
                uf.union(ia, ib);
            }
        }
        // Group members by root, then order classes (and their members) by
        // the smallest member so the axis order is a pure function of the
        // query text.
        let mut groups: Vec<(usize, Vec<QualifiedAttr>)> = Vec::new();
        for id in 0..uf.len() {
            let root = uf.find(id);
            let attr = uf.attr(id).clone();
            match groups.iter_mut().find(|(r, _)| *r == root) {
                Some((_, members)) => members.push(attr),
                None => groups.push((root, vec![attr])),
            }
        }
        let mut classes: Vec<AttrClass> = groups
            .into_iter()
            .map(|(_, mut members)| {
                members.sort_by(|a, b| {
                    (a.relation.as_str(), a.attribute.as_str())
                        .cmp(&(b.relation.as_str(), b.attribute.as_str()))
                });
                members.dedup();
                AttrClass { members }
            })
            .collect();
        classes.sort_by(|a, b| {
            let ka = (a.members[0].relation.as_str(), a.members[0].attribute.as_str());
            let kb = (b.members[0].relation.as_str(), b.members[0].attribute.as_str());
            ka.cmp(&kb)
        });
        let relations = query
            .relations()
            .iter()
            .map(|rel| {
                let edge: Vec<usize> =
                    (0..classes.len()).filter(|&c| classes[c].binds(rel)).collect();
                (rel.clone(), edge)
            })
            .collect();
        JoinGraph { classes, relations }
    }

    /// Classifies the graph via GYO ear removal: acyclic iff the reduction
    /// consumes every hyperedge.
    pub fn shape(&self) -> QueryShape {
        let mut edges: Vec<Vec<usize>> = self.relations.iter().map(|(_, e)| e.clone()).collect();
        let mut alive: Vec<bool> = vec![true; edges.len()];
        loop {
            let mut changed = false;
            // (a) Remove every vertex contained in at most one live edge.
            for v in 0..self.classes.len() {
                let holders: Vec<usize> =
                    (0..edges.len()).filter(|&e| alive[e] && edges[e].contains(&v)).collect();
                if holders.len() == 1 {
                    edges[holders[0]].retain(|&x| x != v);
                    changed = true;
                }
            }
            // (b) Remove every edge contained in another live edge (an empty
            // edge is contained in any other; the last empty edge standing
            // is removed outright).
            for i in 0..edges.len() {
                if !alive[i] {
                    continue;
                }
                let absorbed = edges[i].is_empty()
                    || (0..edges.len()).any(|j| {
                        j != i && alive[j] && edges[i].iter().all(|v| edges[j].contains(v))
                    });
                if absorbed {
                    alive[i] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if alive.iter().any(|&a| a) {
            QueryShape::Cyclic
        } else {
            QueryShape::Acyclic
        }
    }

    /// Builds the hypercube plan for this graph: one axis per class, shares
    /// allocated by [`allocate_shares`] with each class's member count as
    /// its load proxy (more participating attributes ⇒ more tuples
    /// partitioned along that axis).
    pub fn hypercube_plan(&self, cell_budget: u32) -> HypercubePlan {
        let loads: Vec<u64> = self.classes.iter().map(|c| c.members.len() as u64).collect();
        let shares = allocate_shares(cell_budget, &loads);
        HypercubePlan {
            axes: self
                .classes
                .iter()
                .zip(shares)
                .map(|(class, share)| HypercubeAxis { share, members: class.members.clone() })
                .collect(),
        }
    }
}

/// One axis of a hypercube plan: a join-attribute class and the share
/// (partition count) allocated to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubeAxis {
    /// Number of partitions along this axis (`1` = the axis is not actually
    /// partitioned; tuples bound on it still pin a single coordinate).
    pub share: u32,
    /// The attribute references hashed onto this axis.
    pub members: Vec<QualifiedAttr>,
}

/// A hypercube placement plan: `k` axes spanning `s_1 × … × s_k` cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypercubePlan {
    /// The axes, in deterministic class order.
    pub axes: Vec<HypercubeAxis>,
}

impl HypercubePlan {
    /// Total number of cells (`∏ s_i`, `1` for an axis-free plan).
    pub fn cells(&self) -> u32 {
        self.axes.iter().map(|a| a.share).product()
    }

    /// The per-axis shares.
    pub fn shares(&self) -> Vec<u32> {
        self.axes.iter().map(|a| a.share).collect()
    }
}

/// Apportions a cell budget across `k` axes in proportion to their loads:
/// among all share vectors with `∏ s_i <= cell_budget`, picks the one whose
/// sorted per-axis residual loads `load_i / s_i` are lexicographically
/// smallest (minimize the dominant per-cell stream, then the second, …);
/// remaining ties prefer fewer cells (cheaper replication), then the first
/// vector in lexicographic enumeration order. This is `choose_grid`'s
/// minimize-the-dominant-stream rule generalized from exact 2-D
/// factorizations to a k-dimensional budget.
///
/// The enumeration is exhaustive but tiny: share vectors under a budget `B`
/// number O(B · log^(k-1) B), and budgets are small constants (the engine's
/// default is 8 cells).
pub fn allocate_shares(cell_budget: u32, loads: &[u64]) -> Vec<u32> {
    if loads.is_empty() {
        return Vec::new();
    }
    let budget = u64::from(cell_budget.max(1));
    let mut cur = vec![1u32; loads.len()];
    let mut best: Option<(Vec<u64>, u64, Vec<u32>)> = None;
    enumerate_shares(0, 1, budget, loads, &mut cur, &mut best);
    best.expect("the all-ones vector always fits the budget").2
}

/// Recursive enumeration behind [`allocate_shares`]: tries every share for
/// axis `i` that keeps the cell product within budget, scoring complete
/// vectors by (sorted residual loads, cells).
fn enumerate_shares(
    i: usize,
    prod: u64,
    budget: u64,
    loads: &[u64],
    cur: &mut Vec<u32>,
    best: &mut Option<(Vec<u64>, u64, Vec<u32>)>,
) {
    if i == loads.len() {
        let mut residuals: Vec<u64> =
            loads.iter().zip(cur.iter()).map(|(&l, &s)| l / u64::from(s)).collect();
        residuals.sort_unstable_by(|a, b| b.cmp(a));
        let better = match best {
            None => true,
            Some((bres, bcells, _)) => (&residuals, prod) < (bres, *bcells),
        };
        if better {
            *best = Some((residuals, prod, cur.clone()));
        }
        return;
    }
    let mut s = 1u32;
    while prod * u64::from(s) <= budget {
        cur[i] = s;
        enumerate_shares(i + 1, prod * u64::from(s), budget, loads, cur, best);
        s += 1;
    }
    cur[i] = 1;
}

/// The per-query plan decision of the cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPlan {
    /// The paper's pipeline of rewrites (Sections 6–7).
    Rewrite,
    /// One-shot hypercube placement over the plan's cells.
    Hypercube(HypercubePlan),
}

/// The pipeline's one-shot placement cost in query-indexing messages: one
/// hop per rewrite stage. `None` for cyclic shapes — the pipeline has no
/// plan for them.
pub fn pipeline_cost(query: &JoinQuery, shape: QueryShape) -> Option<u64> {
    match shape {
        QueryShape::Acyclic => Some(query.join_count() as u64 + 1),
        QueryShape::Cyclic => None,
    }
}

/// The hypercube's one-shot placement cost: one replicated query copy per
/// cell.
pub fn hypercube_cost(plan: &HypercubePlan) -> u64 {
    u64::from(plan.cells())
}

/// Chooses the evaluation plan for `query` under a hypercube cell budget:
/// builds the join graph, classifies its shape, and compares the two plans'
/// placement costs. Cyclic shapes always take the hypercube (the pipeline
/// cannot express them); acyclic shapes take it only when strictly cheaper.
/// Queries with no join classes at all (single-relation selections) always
/// stay on the rewrite path.
pub fn plan_query(query: &JoinQuery, cell_budget: u32) -> QueryPlan {
    let graph = JoinGraph::build(query);
    if graph.classes.is_empty() {
        return QueryPlan::Rewrite;
    }
    let shape = graph.shape();
    let plan = graph.hypercube_plan(cell_budget);
    match pipeline_cost(query, shape) {
        None => QueryPlan::Hypercube(plan),
        Some(pipe) => {
            if hypercube_cost(&plan) < pipe {
                QueryPlan::Hypercube(plan)
            } else {
                QueryPlan::Rewrite
            }
        }
    }
}

/// Classifies the shape of `query`'s join graph (convenience over
/// [`JoinGraph::build`] + [`JoinGraph::shape`]).
pub fn classify_shape(query: &JoinQuery) -> QueryShape {
    JoinGraph::build(query).shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn triangle() -> JoinQuery {
        parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B AND T.C = R.C").unwrap()
    }

    #[test]
    fn chain_is_acyclic() {
        let q = parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B").unwrap();
        assert_eq!(classify_shape(&q), QueryShape::Acyclic);
    }

    #[test]
    fn triangle_is_cyclic() {
        assert_eq!(classify_shape(&triangle()), QueryShape::Cyclic);
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let q = parse_query(
            "SELECT R.A FROM R, S, T, U \
             WHERE R.A = S.A AND S.B = T.B AND T.C = U.C AND U.D = R.D",
        )
        .unwrap();
        assert_eq!(classify_shape(&q), QueryShape::Cyclic);
    }

    #[test]
    fn star_on_one_class_is_acyclic() {
        // Three conjuncts closing a "triangle" on a single attribute class
        // collapse to one vertex: semantically a star join, which GYO
        // correctly reduces.
        let q = parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.A = T.A AND T.A = R.A")
            .unwrap();
        let graph = JoinGraph::build(&q);
        assert_eq!(graph.classes.len(), 1);
        assert_eq!(graph.shape(), QueryShape::Acyclic);
    }

    #[test]
    fn parallel_conjuncts_between_two_relations_are_acyclic() {
        let q = parse_query("SELECT R.A FROM R, S WHERE R.A = S.A AND R.B = S.B").unwrap();
        assert_eq!(classify_shape(&q), QueryShape::Acyclic);
    }

    #[test]
    fn selection_only_query_has_no_classes() {
        let q = parse_query("SELECT R.A FROM R WHERE R.A = 5").unwrap();
        let graph = JoinGraph::build(&q);
        assert!(graph.classes.is_empty());
        assert_eq!(graph.shape(), QueryShape::Acyclic);
        assert_eq!(plan_query(&q, 8), QueryPlan::Rewrite);
    }

    #[test]
    fn const_conjuncts_do_not_affect_topology() {
        let q = parse_query(
            "SELECT R.A FROM R, S, T \
             WHERE R.A = S.A AND S.B = T.B AND T.C = R.C AND R.A = 7",
        )
        .unwrap();
        assert_eq!(classify_shape(&q), QueryShape::Cyclic);
    }

    #[test]
    fn join_graph_is_deterministic_and_sorted() {
        let graph = JoinGraph::build(&triangle());
        assert_eq!(graph.classes.len(), 3);
        // Classes ordered by smallest member; members sorted.
        let firsts: Vec<String> = graph.classes.iter().map(|c| c.members[0].to_string()).collect();
        assert_eq!(firsts, vec!["R.A", "R.C", "S.B"]);
        // Each relation's hyperedge touches exactly two classes.
        for (_, edge) in &graph.relations {
            assert_eq!(edge.len(), 2);
        }
        assert_eq!(graph, JoinGraph::build(&triangle()));
    }

    #[test]
    fn allocate_shares_balances_uniform_loads() {
        assert_eq!(allocate_shares(8, &[2, 2, 2]), vec![2, 2, 2]);
    }

    #[test]
    fn allocate_shares_degenerates_to_pure_split_under_skew() {
        // One dominant axis takes the whole budget, mirroring choose_grid's
        // pure tuple/query splits.
        assert_eq!(allocate_shares(8, &[400, 1, 1]), vec![8, 1, 1]);
    }

    #[test]
    fn allocate_shares_two_axes_mirror_choose_grid() {
        // Balanced 2-D loads under a budget of 8: the dominant stream is
        // minimized at L/2 by splitting the first axis in two, and the spare
        // budget then shrinks the secondary stream (2×4, not 2×2).
        assert_eq!(allocate_shares(8, &[100, 100]), vec![2, 4]);
        assert_eq!(allocate_shares(8, &[400, 90]), vec![8, 1]);
    }

    #[test]
    fn allocate_shares_respects_budget() {
        for budget in 1..=16u32 {
            let shares = allocate_shares(budget, &[5, 3, 2]);
            let cells: u32 = shares.iter().product();
            assert!(cells <= budget.max(1));
            assert!(shares.iter().all(|&s| s >= 1));
        }
        assert!(allocate_shares(8, &[]).is_empty());
    }

    #[test]
    fn plan_query_chooses_hypercube_for_cyclic_and_pipeline_for_acyclic() {
        let chain = parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B").unwrap();
        assert_eq!(plan_query(&chain, 8), QueryPlan::Rewrite);
        match plan_query(&triangle(), 8) {
            QueryPlan::Hypercube(plan) => {
                assert_eq!(plan.axes.len(), 3);
                assert_eq!(plan.shares(), vec![2, 2, 2]);
                assert_eq!(plan.cells(), 8);
            }
            other => panic!("triangle must take the hypercube, got {other:?}"),
        }
    }

    #[test]
    fn cost_model_units() {
        let shape = classify_shape(&triangle());
        assert_eq!(pipeline_cost(&triangle(), shape), None, "no pipeline plan for cycles");
        let chain = parse_query("SELECT R.A FROM R, S, T WHERE R.A = S.A AND S.B = T.B").unwrap();
        assert_eq!(pipeline_cost(&chain, QueryShape::Acyclic), Some(3));
        let plan = JoinGraph::build(&triangle()).hypercube_plan(8);
        assert_eq!(hypercube_cost(&plan), 8);
    }

    #[test]
    fn tiny_budget_still_plans_cycles() {
        let plan = JoinGraph::build(&triangle()).hypercube_plan(1);
        assert_eq!(plan.cells(), 1, "a 1-cell hypercube is a centralized fallback");
    }
}
