//! The incremental rewriting step at the heart of RJoin.
//!
//! When a tuple `t` of relation `R` triggers a query `q` (input or already
//! rewritten), `q` is rewritten into a query with fewer joins: every
//! occurrence of an attribute of `R` is replaced by the corresponding value
//! of `t` and the `WHERE` clause is simplified. Three outcomes are possible:
//!
//! * the `WHERE` clause becomes `true` — an **answer** has been produced,
//! * some conjuncts remain — a smaller **rewritten query** is produced and
//!   must be re-indexed at another node,
//! * a selection conjunct over `R` evaluates to `false` — the tuple does
//!   **not** match and nothing is produced.

use crate::ast::{Conjunct, JoinQuery, SelectItem};
use crate::QueryError;
use rjoin_relation::{Name, Schema, Tuple, Value};

/// Result of rewriting a query with an incoming tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteResult {
    /// The `WHERE` clause became `true`; the answer row (the fully resolved
    /// `SELECT` list) is returned.
    Complete(Vec<Value>),
    /// The query still has work to do; the rewritten query is returned and
    /// must be re-indexed.
    Partial(JoinQuery),
    /// The tuple does not satisfy a selection conjunct of the query; the
    /// query is unaffected.
    Mismatch,
}

impl RewriteResult {
    /// Convenience predicate.
    pub fn is_mismatch(&self) -> bool {
        matches!(self, RewriteResult::Mismatch)
    }
}

fn tuple_value<'t>(
    tuple: &'t Tuple,
    schema: &Schema,
    attribute: &str,
) -> Result<&'t Value, QueryError> {
    let idx = schema.index_of(attribute).ok_or_else(|| QueryError::UnknownAttribute {
        attr: crate::ast::QualifiedAttr::new(tuple.relation(), attribute),
    })?;
    tuple.value(idx).ok_or_else(|| QueryError::ArityMismatch {
        attr: crate::ast::QualifiedAttr::new(tuple.relation(), attribute),
        index: idx,
        arity: tuple.arity(),
    })
}

/// Rewrites `query` with the incoming `tuple` (whose schema is `schema`),
/// implementing the `rewrite(q, t)` function of Procedures 2 and 3.
///
/// Returns an error if the tuple's relation is not referenced by the query,
/// if the schema does not describe the tuple's relation, or if the query
/// references an attribute that does not exist in the schema. These are
/// caller bugs, not data-dependent conditions.
pub fn rewrite(
    query: &JoinQuery,
    tuple: &Tuple,
    schema: &Schema,
) -> Result<RewriteResult, QueryError> {
    let relation = tuple.relation();
    if schema.relation() != relation {
        return Err(QueryError::SchemaMismatch {
            tuple_relation: relation.to_string(),
            schema_relation: schema.relation().to_string(),
        });
    }
    if !query.references_relation(relation) {
        return Err(QueryError::IrrelevantTuple { relation: relation.to_string() });
    }

    // Simplify the WHERE clause.
    let mut new_conjuncts = Vec::with_capacity(query.conjuncts().len());
    for conjunct in query.conjuncts() {
        match conjunct {
            Conjunct::JoinEq(a, b) => {
                if a.relation == relation && b.relation == relation {
                    // Both sides belong to the incoming tuple's relation
                    // (a self-join conjunct such as `R.A = R.B`): the
                    // conjunct is fully resolvable right now, so evaluate it
                    // immediately. Emitting a `ConstEq` over `relation` here
                    // would be residue that can never fire again, because
                    // `relation` is dropped from the `FROM` list below.
                    let va = tuple_value(tuple, schema, &a.attribute)?;
                    let vb = tuple_value(tuple, schema, &b.attribute)?;
                    if va != vb {
                        return Ok(RewriteResult::Mismatch);
                    }
                    // Satisfied: drop the conjunct.
                } else if a.relation == relation {
                    let v = tuple_value(tuple, schema, &a.attribute)?;
                    new_conjuncts.push(Conjunct::ConstEq(b.clone(), v.clone()));
                } else if b.relation == relation {
                    let v = tuple_value(tuple, schema, &b.attribute)?;
                    new_conjuncts.push(Conjunct::ConstEq(a.clone(), v.clone()));
                } else {
                    new_conjuncts.push(conjunct.clone());
                }
            }
            Conjunct::ConstEq(a, expected) => {
                if a.relation == relation {
                    let v = tuple_value(tuple, schema, &a.attribute)?;
                    if v != expected {
                        return Ok(RewriteResult::Mismatch);
                    }
                    // Satisfied: drop the conjunct.
                } else {
                    new_conjuncts.push(conjunct.clone());
                }
            }
        }
    }

    // Resolve SELECT items that refer to the incoming relation.
    let new_select = resolve_select_items(query.select(), tuple, schema)?;

    // Drop the relation from the FROM list.
    let new_relations: Vec<Name> =
        query.relations().iter().filter(|r| r.as_str() != relation).cloned().collect();

    let rewritten = JoinQuery::from_parts_unchecked(
        query.distinct(),
        new_select,
        new_relations,
        new_conjuncts,
        *query.window(),
    );

    if rewritten.is_complete() {
        match rewritten.answer_row() {
            Some(row) => Ok(RewriteResult::Complete(row)),
            // Complete WHERE clause but unresolved SELECT items: the query
            // selects an attribute of a relation that is no longer (or was
            // never) in FROM, so it can never produce its answer row. The
            // constructor prevents this; only unchecked construction can
            // reach it. Returning `Partial` here would store an empty-FROM
            // query forever — report the caller bug instead.
            None => {
                let attr = rewritten
                    .select()
                    .iter()
                    .find_map(|item| match item {
                        SelectItem::Attr(a) => Some(a.clone()),
                        SelectItem::Const(_) => None,
                    })
                    .expect("answer_row is None only when an Attr item remains");
                Err(QueryError::UnresolvedSelect { attr })
            }
        }
    } else if rewritten.relations().is_empty() {
        // Conjuncts survived the rewrite but no relation remains to resolve
        // them: the source query carried residue over a relation absent from
        // its FROM list (orphaned residue from unchecked construction). Such
        // a query can never complete; reject it instead of storing it.
        let attr = rewritten.conjuncts()[0].attrs()[0].clone();
        Err(QueryError::UnknownQueryRelation { attr })
    } else {
        Ok(RewriteResult::Partial(rewritten))
    }
}

/// Resolves every `SELECT` item referring to the tuple's relation to the
/// constant carried by the tuple, leaving all other items untouched.
///
/// This is the `SELECT`-resolution half of [`rewrite`], exposed separately so
/// shared sub-join evaluation can resolve the *per-subscriber* `SELECT` lists
/// of a shared query with the same tuple that rewrote the shared `WHERE`
/// clause once.
pub fn resolve_select_items(
    items: &[SelectItem],
    tuple: &Tuple,
    schema: &Schema,
) -> Result<Vec<SelectItem>, QueryError> {
    let relation = tuple.relation();
    let mut resolved = Vec::with_capacity(items.len());
    for item in items {
        match item {
            SelectItem::Attr(a) if a.relation == relation => {
                let v = tuple_value(tuple, schema, &a.attribute)?;
                resolved.push(SelectItem::Const(v.clone()));
            }
            other => resolved.push(other.clone()),
        }
    }
    Ok(resolved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use rjoin_relation::Schema;

    fn schema(rel: &str) -> Schema {
        Schema::new(rel, ["A", "B", "C"]).unwrap()
    }

    fn tuple(rel: &str, values: [i64; 3]) -> Tuple {
        Tuple::new(rel, values.iter().map(|v| Value::from(*v)).collect(), 0)
    }

    /// Reproduces the running example of Figure 1 in the paper end to end.
    #[test]
    fn figure_one_example() {
        let q = parse_query(
            "SELECT S.B, M.A FROM R, S, J, M WHERE R.A = S.A AND S.B = J.B AND J.C = M.C",
        )
        .unwrap();

        // Event 2: tuple t1 = (2,5,8) of R.
        let q1 = match rewrite(&q, &tuple("R", [2, 5, 8]), &schema("R")).unwrap() {
            RewriteResult::Partial(q1) => q1,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q1.join_count(), 2);
        assert!(q1.conjuncts().contains(&Conjunct::ConstEq(
            crate::ast::QualifiedAttr::new("S", "A"),
            Value::from(2)
        )));
        assert!(!q1.references_relation("R"));

        // Event 3: tuple t2 = (2,6,3) of S.
        let q2 = match rewrite(&q1, &tuple("S", [2, 6, 3]), &schema("S")).unwrap() {
            RewriteResult::Partial(q2) => q2,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q2.join_count(), 1);
        assert_eq!(q2.select()[0], SelectItem::Const(Value::from(6)));

        // Event 5 (first half): tuple t4 = (7,6,2) of J.
        let q3 = match rewrite(&q2, &tuple("J", [7, 6, 2]), &schema("J")).unwrap() {
            RewriteResult::Partial(q3) => q3,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q3.join_count(), 0);
        assert_eq!(q3.relations(), &["M".to_string()]);

        // Event 5 (second half): stored tuple t3 = (9,1,2) of M completes it.
        match rewrite(&q3, &tuple("M", [9, 1, 2]), &schema("M")).unwrap() {
            RewriteResult::Complete(row) => {
                assert_eq!(row, vec![Value::from(6), Value::from(9)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn const_mismatch_is_detected() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 2").unwrap();
        // S.A = 3 does not satisfy S.A = 2.
        let r = rewrite(&q, &tuple("S", [3, 6, 3]), &schema("S")).unwrap();
        assert!(r.is_mismatch());
        // S.A = 2 does.
        let r = rewrite(&q, &tuple("S", [2, 6, 3]), &schema("S")).unwrap();
        assert_eq!(r, RewriteResult::Complete(vec![Value::from(6)]));
    }

    #[test]
    fn irrelevant_tuple_is_an_error() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 2").unwrap();
        let err = rewrite(&q, &tuple("Z", [1, 2, 3]), &schema("Z")).unwrap_err();
        assert!(matches!(err, QueryError::IrrelevantTuple { .. }));
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 2").unwrap();
        let err = rewrite(&q, &tuple("S", [2, 6, 3]), &schema("R")).unwrap_err();
        assert!(matches!(err, QueryError::SchemaMismatch { .. }));
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let q = parse_query("SELECT S.Z FROM S, R WHERE S.Z = R.A").unwrap();
        let err = rewrite(&q, &tuple("S", [2, 6, 3]), &schema("S")).unwrap_err();
        assert!(matches!(err, QueryError::UnknownAttribute { .. }));
    }

    #[test]
    fn multiple_joins_on_same_relation_all_rewritten() {
        // R joins with both S and P; one tuple of R resolves both sides.
        let q = parse_query("SELECT R.A FROM R, S, P WHERE R.A = S.A AND R.B = P.B").unwrap();
        let q1 = match rewrite(&q, &tuple("R", [1, 2, 3]), &schema("R")).unwrap() {
            RewriteResult::Partial(q1) => q1,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q1.join_count(), 0);
        assert_eq!(q1.conjuncts().len(), 2);
        assert!(q1.conjuncts().iter().all(|c| matches!(c, Conjunct::ConstEq(_, _))));
    }

    #[test]
    fn rewriting_preserves_distinct_and_window() {
        let q =
            parse_query("SELECT DISTINCT R.A FROM R, S WHERE R.A = S.A WINDOW SLIDING 100 TUPLES")
                .unwrap();
        let q1 = match rewrite(&q, &tuple("R", [1, 2, 3]), &schema("R")).unwrap() {
            RewriteResult::Partial(q1) => q1,
            other => panic!("unexpected {other:?}"),
        };
        assert!(q1.distinct());
        assert_eq!(q1.window(), q.window());
    }

    /// Regression: a conjunct with *both* sides in the incoming tuple's
    /// relation (`R.A = R.B`) used to fire only the `a` branch, leaving a
    /// `ConstEq` over the relation being dropped from `FROM` — residue that
    /// could never be evaluated. Such conjuncts are rejected by
    /// `JoinQuery::new`, but unchecked construction (deserialization, the
    /// rewriting engine itself) can carry them, and `rewrite` must evaluate
    /// them immediately.
    #[test]
    fn self_join_conjunct_satisfied_by_tuple_is_dropped() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Attr(crate::ast::QualifiedAttr::new("S", "B"))],
            vec!["R".into(), "S".into()],
            vec![
                Conjunct::JoinEq(
                    crate::ast::QualifiedAttr::new("R", "A"),
                    crate::ast::QualifiedAttr::new("R", "B"),
                ),
                Conjunct::JoinEq(
                    crate::ast::QualifiedAttr::new("R", "C"),
                    crate::ast::QualifiedAttr::new("S", "C"),
                ),
            ],
            crate::WindowSpec::None,
        );
        // R.A == R.B holds (7 == 7): the self-join conjunct is consumed, and
        // the surviving conjunct mentions only S — no dangling residue.
        let q1 = match rewrite(&q, &tuple("R", [7, 7, 3]), &schema("R")).unwrap() {
            RewriteResult::Partial(q1) => q1,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(q1.relations(), &["S".to_string()]);
        assert!(
            q1.conjuncts().iter().all(|c| !c.mentions("R")),
            "no conjunct may reference the dropped relation: {q1}"
        );
        assert_eq!(q1.conjuncts().len(), 1);
    }

    #[test]
    fn self_join_conjunct_violated_by_tuple_is_a_mismatch() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Attr(crate::ast::QualifiedAttr::new("S", "B"))],
            vec!["R".into(), "S".into()],
            vec![
                Conjunct::JoinEq(
                    crate::ast::QualifiedAttr::new("R", "A"),
                    crate::ast::QualifiedAttr::new("R", "B"),
                ),
                Conjunct::JoinEq(
                    crate::ast::QualifiedAttr::new("R", "C"),
                    crate::ast::QualifiedAttr::new("S", "C"),
                ),
            ],
            crate::WindowSpec::None,
        );
        // R.A != R.B (7 vs 8): the tuple cannot satisfy the query at all.
        let r = rewrite(&q, &tuple("R", [7, 8, 3]), &schema("R")).unwrap();
        assert!(r.is_mismatch());
    }

    #[test]
    fn resolve_select_items_only_touches_the_tuple_relation() {
        let items = vec![
            SelectItem::Attr(crate::ast::QualifiedAttr::new("R", "B")),
            SelectItem::Attr(crate::ast::QualifiedAttr::new("S", "A")),
            SelectItem::Const(Value::from(42)),
        ];
        let resolved = resolve_select_items(&items, &tuple("R", [1, 2, 3]), &schema("R")).unwrap();
        assert_eq!(
            resolved,
            vec![
                SelectItem::Const(Value::from(2)),
                SelectItem::Attr(crate::ast::QualifiedAttr::new("S", "A")),
                SelectItem::Const(Value::from(42)),
            ]
        );
    }

    /// Regression: a bad attribute name and an arity-short tuple used to
    /// both map to `UnknownAttribute`. They are different bugs (schema typo
    /// vs malformed tuple) and must stay distinguishable.
    #[test]
    fn short_tuple_is_an_arity_mismatch_not_unknown_attribute() {
        let q = parse_query("SELECT S.B FROM S, R WHERE S.C = R.A").unwrap();
        // `S.C` exists in the schema, but the tuple only carries two values.
        let short = Tuple::new("S", vec![Value::from(1), Value::from(2)], 0);
        let err = rewrite(&q, &short, &schema("S")).unwrap_err();
        assert_eq!(
            err,
            QueryError::ArityMismatch {
                attr: crate::ast::QualifiedAttr::new("S", "C"),
                index: 2,
                arity: 2,
            }
        );
    }

    /// Regression: a complete WHERE clause with unresolved SELECT items used
    /// to come back as `Partial` — an empty-FROM query that can never finish
    /// and would be stored forever. It is a caller bug and must be an error.
    #[test]
    fn complete_where_with_unresolved_select_is_an_error() {
        // Only unchecked construction can produce a SELECT over a relation
        // absent from FROM.
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Attr(crate::ast::QualifiedAttr::new("S", "B"))],
            vec!["R".into()],
            vec![],
            crate::WindowSpec::None,
        );
        let err = rewrite(&q, &tuple("R", [1, 2, 3]), &schema("R")).unwrap_err();
        assert_eq!(
            err,
            QueryError::UnresolvedSelect { attr: crate::ast::QualifiedAttr::new("S", "B") }
        );
    }

    /// Orphaned residue: a conjunct over a relation absent from FROM can
    /// never be resolved once the FROM list empties. `rewrite` must reject
    /// it rather than emit an empty-FROM partial query.
    #[test]
    fn orphaned_residue_with_empty_from_is_an_error() {
        let q = JoinQuery::from_parts_unchecked(
            false,
            vec![SelectItem::Const(Value::from(1))],
            vec!["R".into()],
            vec![Conjunct::ConstEq(crate::ast::QualifiedAttr::new("Z", "A"), Value::from(5))],
            crate::WindowSpec::None,
        );
        let err = rewrite(&q, &tuple("R", [1, 2, 3]), &schema("R")).unwrap_err();
        assert_eq!(
            err,
            QueryError::UnknownQueryRelation { attr: crate::ast::QualifiedAttr::new("Z", "A") }
        );
    }

    #[test]
    fn string_values_flow_through() {
        let q = parse_query("SELECT S.B FROM S WHERE S.A = 'abc'").unwrap();
        let t = Tuple::new("S", vec![Value::from("abc"), Value::from("out"), Value::from(0)], 0);
        match rewrite(&q, &t, &schema("S")).unwrap() {
            RewriteResult::Complete(row) => assert_eq!(row, vec![Value::from("out")]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
