//! The constant-δ bucket queue shared by both transports.
//!
//! Because every message is delivered a fixed δ after a monotone clock,
//! arrival times are pushed in (almost always) non-decreasing order; one
//! FIFO bucket per delivery tick gives O(1) push and pop where a binary
//! heap would pay O(log n) comparisons per event. The queue is entry-type
//! generic so the single-queue [`Network`](crate::Network) and the
//! per-shard queues of [`ShardedNetwork`](crate::ShardedNetwork) share the
//! exact same scheduling structure.

use crate::SimTime;
use std::collections::VecDeque;

/// A bucket queue of scheduled entries, one bucket per delivery tick.
///
/// Entries within a bucket are kept in push order (FIFO); callers that need
/// a different intra-tick order (the sharded transport orders by lineage)
/// sort the drained bucket themselves. Out-of-order pushes (not produced by
/// any current caller) are still handled correctly via binary search.
#[derive(Debug)]
pub struct BucketQueue<E> {
    buckets: VecDeque<(SimTime, VecDeque<E>)>,
    len: usize,
}

impl<E> Default for BucketQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BucketQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BucketQueue { buckets: VecDeque::new(), len: 0 }
    }

    /// Number of entries currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entry is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest scheduled delivery tick, if any entry is queued.
    pub fn next_time(&self) -> Option<SimTime> {
        self.buckets.front().map(|(at, _)| *at)
    }

    /// Schedules `entry` for tick `at`.
    pub fn push(&mut self, at: SimTime, entry: E) {
        self.len += 1;
        let behind_tail = match self.buckets.back_mut() {
            Some((t, bucket)) if *t == at => {
                bucket.push_back(entry);
                return;
            }
            Some((t, _)) => *t > at,
            None => false,
        };
        if !behind_tail {
            self.buckets.push_back((at, VecDeque::from([entry])));
            return;
        }
        // Slow path for a push behind the tail; appending within the found
        // bucket preserves push order.
        match self.buckets.binary_search_by(|(t, _)| t.cmp(&at)) {
            Ok(i) => self.buckets[i].1.push_back(entry),
            Err(i) => self.buckets.insert(i, (at, VecDeque::from([entry]))),
        }
    }

    /// Pops the globally earliest entry.
    pub fn pop_front(&mut self) -> Option<(SimTime, E)> {
        let (at, bucket) = self.buckets.front_mut()?;
        let at = *at;
        let entry = bucket.pop_front().expect("buckets are never left empty");
        if bucket.is_empty() {
            self.buckets.pop_front();
        }
        self.len -= 1;
        Some((at, entry))
    }

    /// Drains the entire earliest bucket in push order.
    pub fn pop_bucket(&mut self) -> Option<(SimTime, VecDeque<E>)> {
        let (at, bucket) = self.buckets.pop_front()?;
        self.len -= bucket.len();
        Some((at, bucket))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_preserves_time_then_fifo_order() {
        let mut q: BucketQueue<&str> = BucketQueue::new();
        q.push(10, "late");
        q.push(5, "early");
        q.push(5, "early2");
        q.push(7, "mid");
        assert_eq!(q.len(), 4);
        assert_eq!(q.next_time(), Some(5));
        let order: Vec<(SimTime, &str)> = std::iter::from_fn(|| q.pop_front()).collect();
        assert_eq!(order, vec![(5, "early"), (5, "early2"), (7, "mid"), (10, "late")]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_bucket_drains_whole_tick() {
        let mut q: BucketQueue<u32> = BucketQueue::new();
        q.push(3, 1);
        q.push(3, 2);
        q.push(9, 3);
        let (at, bucket) = q.pop_bucket().unwrap();
        assert_eq!(at, 3);
        assert_eq!(Vec::from(bucket), vec![1, 2]);
        assert_eq!(q.len(), 1);
    }
}
