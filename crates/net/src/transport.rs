//! The transport abstraction: the messaging API a simulation driver sees.
//!
//! The paper's system model needs exactly three primitives — `send`,
//! `multiSend` and `sendDirect` — plus the cost-only accounting variants the
//! engine uses to model synchronous RIC exchanges. [`Transport`] captures
//! them behind one trait so the engine's effect phase can be written once
//! and run against either event-queue runtime:
//!
//! * [`Network`](crate::Network) — the single global bucket queue, driven by
//!   one thread in strict `(at, seq)` order, and
//! * the per-shard sender handles of [`ShardedNetwork`](crate::ShardedNetwork)
//!   — each shard schedules into its own queue and exchanges cross-shard
//!   messages through outbox/inbox handoff under conservative clock
//!   synchronization.

use crate::{SimTime, TrafficClass};
use rjoin_dht::{DhtError, Id, LookupResult};

/// The messaging surface of a simulated network runtime.
///
/// All implementations share the same cost model: a routed message is one
/// message sent per hop of its DHT lookup path (creation + routing), a
/// direct message is one message, and every delivery is scheduled exactly
/// the delay bound δ after the sender's current clock.
pub trait Transport<M> {
    /// The sender-side clock: the simulation time deliveries are scheduled
    /// relative to.
    fn now(&self) -> SimTime;

    /// The configured per-message delay bound δ.
    fn delay(&self) -> SimTime;

    /// Resolves the node currently responsible for `key_id` without sending
    /// anything and without accounting traffic (an ownership oracle).
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError>;

    /// `send(msg, id)`: routes `msg` from `from` to `Successor(key_id)`,
    /// accounting one message per hop under `class`, and schedules delivery
    /// after the delay bound.
    fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: M,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError>;

    /// `multiSend(M, I)`: routes each `(key_id, msg)` pair independently, as
    /// the paper's API does (cost `h * O(log N)` hops).
    fn multi_send(
        &mut self,
        from: Id,
        items: Vec<(Id, M)>,
        class: TrafficClass,
    ) -> Result<Vec<LookupResult>, DhtError> {
        let mut results = Vec::with_capacity(items.len());
        for (key_id, msg) in items {
            results.push(self.send(from, key_id, msg, class)?);
        }
        Ok(results)
    }

    /// `sendDirect(msg, addr)`: delivers `msg` to a known address in one
    /// hop.
    fn send_direct(&mut self, from: Id, to: Id, msg: M, class: TrafficClass);

    /// Accounts the traffic of routing one message to `Successor(key_id)`
    /// without scheduling a delivery (synchronous request/response whose
    /// cost must still be charged).
    fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError>;

    /// Accounts one direct (single-hop) message without scheduling a
    /// delivery. Companion of [`charge_route`](Self::charge_route).
    fn charge_direct(&mut self, from: Id, class: TrafficClass);
}
