//! The transport abstraction: the messaging API a driver sees.
//!
//! The paper's system model needs exactly three primitives — `send`,
//! `multiSend` and `sendDirect` — plus the cost-only accounting variants the
//! engine uses to model synchronous RIC exchanges. Two traits capture them:
//!
//! * [`KeyRouter`] is the *pure routing* concern: mapping a ring identifier
//!   to the node currently responsible for it, with no clock, no delivery
//!   and no traffic accounting. Anything that knows the membership of the
//!   ring can implement it — the simulated Chord ring resolves successors
//!   through (possibly stale) per-node routing state, while a deployment
//!   can resolve them from a replicated membership view.
//! * [`Transport`] adds the *delivery and clock* concerns on top: a sender
//!   clock, the delay bound δ, scheduled delivery of messages and per-class
//!   traffic accounting. The engine's effect phase is written once against
//!   this trait and runs unchanged on every implementation.
//!
//! # Implementations and their guarantees
//!
//! | impl | clock | ordering | routing |
//! |------|-------|----------|---------|
//! | [`Network`](crate::Network) | virtual ticks, one global monotone clock | total `(at, seq)` order: every delivery of a run is totally ordered and replayed identically | Chord lookups over per-node routing state (`O(log N)` hops, each hop accounted) |
//! | [`ShardedNetwork`](crate::ShardedNetwork) handles | virtual ticks, one clock per shard under conservative watermark sync | total `(at, lineage)` order, identical across shard counts | same Chord lookups (stable ground-truth membership) |
//! | `rjoin_transport::TcpTransport` (separate crate) | real wall clock, coarse ticks, monotone via high-water marking | per-peer FIFO only (TCP streams); *no* global order — cross-node interleaving is nondeterministic | one hop to the owner from a full-membership view (no overlay hops) |
//!
//! The simulated runtimes deliver every message exactly once and in a
//! deterministic global order, which is what makes them usable as
//! correctness oracles. A real transport only guarantees per-connection
//! FIFO and at-most-once delivery (a crashed peer loses messages), so
//! protocols built on this trait must not rely on cross-peer ordering —
//! the record/replay harness in the facade crate checks exactly that.

use crate::{SimTime, TrafficClass};
use rjoin_dht::{DhtError, Id, LookupResult};

/// The pure routing concern: who is responsible for a ring identifier.
///
/// Split out of [`Transport`] so ownership can be resolved — by placement
/// logic, by state re-homing, by harnesses — without dragging in a clock or
/// a delivery queue. Resolving ownership sends nothing and accounts no
/// traffic (an ownership oracle).
pub trait KeyRouter {
    /// Resolves the node currently responsible for `key_id`.
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError>;
}

/// The messaging surface of a network runtime: [`KeyRouter`] plus clocks,
/// scheduled delivery and traffic accounting.
///
/// All implementations share the same cost model: a routed message is one
/// message sent per hop of its lookup path (creation + routing), a direct
/// message is one message, and every delivery is scheduled the delay bound
/// δ after the sender's current clock.
pub trait Transport<M>: KeyRouter {
    /// The sender-side clock: the time deliveries are scheduled relative
    /// to. Virtual ticks under simulation, a coarse-ticked wall clock on a
    /// real transport.
    fn now(&self) -> SimTime;

    /// The configured per-message delay bound δ.
    fn delay(&self) -> SimTime;

    /// `send(msg, id)`: routes `msg` from `from` to `Successor(key_id)`,
    /// accounting one message per hop under `class`, and schedules delivery
    /// after the delay bound.
    fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: M,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError>;

    /// `multiSend(M, I)`: routes each `(key_id, msg)` pair independently, as
    /// the paper's API does (cost `h * O(log N)` hops).
    fn multi_send(
        &mut self,
        from: Id,
        items: Vec<(Id, M)>,
        class: TrafficClass,
    ) -> Result<Vec<LookupResult>, DhtError> {
        let mut results = Vec::with_capacity(items.len());
        for (key_id, msg) in items {
            results.push(self.send(from, key_id, msg, class)?);
        }
        Ok(results)
    }

    /// `sendDirect(msg, addr)`: delivers `msg` to a known address in one
    /// hop.
    fn send_direct(&mut self, from: Id, to: Id, msg: M, class: TrafficClass);

    /// Accounts the traffic of routing one message to `Successor(key_id)`
    /// without scheduling a delivery (synchronous request/response whose
    /// cost must still be charged).
    fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError>;

    /// Accounts one direct (single-hop) message without scheduling a
    /// delivery. Companion of [`charge_route`](Self::charge_route).
    fn charge_direct(&mut self, from: Id, class: TrafficClass);
}
