//! Simulation time.

/// Logical simulation time, measured in abstract ticks.
///
/// The simulation only relies on a total order and on the existence of a
/// known upper bound δ on message delay (Section 2 of the paper), so a plain
/// tick counter is sufficient.
pub type SimTime = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_is_u64() {
        let t: SimTime = 42;
        assert_eq!(t + 1, 43);
    }
}
