//! Per-node traffic accounting.

use rjoin_dht::{Id, RingBuildHasher};
use std::collections::HashMap;

/// A caller-defined class of traffic.
///
/// The paper reports the *total* traffic per node as well as the portion
/// spent on requesting RIC information (e.g. Figure 2(a), Figure 3(a)), so
/// every accounted message carries a class tag. The RJoin engine defines its
/// own constants; this crate only fixes the representation.
pub type TrafficClass = u8;

/// Per-class counters of one node: a flat vector indexed by class, grown on
/// demand. The engine uses a handful of small, dense class tags, so this is
/// both smaller and far faster than a per-class hash map.
#[derive(Debug, Clone, Default)]
struct ClassCounts(Vec<u64>);

impl ClassCounts {
    #[inline]
    fn add(&mut self, class: TrafficClass, count: u64) {
        let idx = class as usize;
        if idx >= self.0.len() {
            self.0.resize(idx + 1, 0);
        }
        self.0[idx] += count;
    }

    #[inline]
    fn get(&self, class: TrafficClass) -> u64 {
        self.0.get(class as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Accounts one routed message along `path` into `traffic`: every hop is one
/// message sent by the node at the start of the hop (the originator counts
/// for creating + sending the message, each intermediate node for routing
/// it); a purely local delivery still counts as one message created.
///
/// This is the single definition of the paper's per-hop cost model, shared
/// by the single-queue [`Network`](crate::Network) and the per-shard senders
/// of [`ShardedNetwork`](crate::ShardedNetwork) so the two transports are
/// accounting-identical by construction.
pub fn account_route(traffic: &mut TrafficStats, path: &[Id], class: TrafficClass) {
    if path.len() >= 2 {
        for sender in &path[..path.len() - 1] {
            traffic.record_sent(*sender, class);
        }
    } else if let Some(only) = path.first() {
        traffic.record_sent(*only, class);
    }
}

/// Per-node message counters, broken down by [`TrafficClass`].
///
/// Following the paper's definition, the traffic a node incurs is the number
/// of messages it has to **send**, which includes both the messages it
/// creates (RJoin-level messages) and the messages it forwards on behalf of
/// the DHT routing layer. Received messages are tracked separately for
/// diagnostics but are not part of the paper's traffic metric.
///
/// Accounting runs once per *hop*, making these the most frequently updated
/// counters in the simulation; node keys are ring identifiers (already
/// uniform), so the maps use the cheap [`RingBuildHasher`] instead of
/// SipHash.
///
/// Under the sharded runtime the stats additionally record, per scheduled
/// delivery, whether the message stayed inside its source shard or crossed
/// a shard boundary — the shard-locality signal the sharded drain is tuned
/// by. The single-queue transport leaves both counters at zero.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    sent: HashMap<Id, ClassCounts, RingBuildHasher>,
    received: HashMap<Id, u64, RingBuildHasher>,
    intra_shard: u64,
    cross_shard: u64,
}

impl TrafficStats {
    /// Creates an empty set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message sent by `node` (either created or routed).
    pub fn record_sent(&mut self, node: Id, class: TrafficClass) {
        self.sent.entry(node).or_default().add(class, 1);
    }

    /// Records `count` messages sent by `node`.
    pub fn record_sent_n(&mut self, node: Id, class: TrafficClass, count: u64) {
        if count > 0 {
            self.sent.entry(node).or_default().add(class, count);
        }
    }

    /// Records one message received by `node`.
    pub fn record_received(&mut self, node: Id) {
        *self.received.entry(node).or_insert(0) += 1;
    }

    /// Total messages sent by `node`, all classes combined.
    pub fn sent_by(&self, node: Id) -> u64 {
        self.sent.get(&node).map(ClassCounts::total).unwrap_or(0)
    }

    /// Messages of `class` sent by `node`.
    pub fn sent_by_class(&self, node: Id, class: TrafficClass) -> u64 {
        self.sent.get(&node).map(|m| m.get(class)).unwrap_or(0)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: Id) -> u64 {
        self.received.get(&node).copied().unwrap_or(0)
    }

    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().map(ClassCounts::total).sum()
    }

    /// Total messages of `class` sent across all nodes.
    pub fn total_sent_class(&self, class: TrafficClass) -> u64 {
        self.sent.values().map(|m| m.get(class)).sum()
    }

    /// Per-node totals (all classes), for distribution plots.
    pub fn per_node_sent(&self) -> HashMap<Id, u64> {
        self.sent.iter().map(|(id, m)| (*id, m.total())).collect()
    }

    /// Number of nodes that sent at least one message.
    pub fn active_nodes(&self) -> usize {
        self.sent.values().filter(|m| m.total() > 0).count()
    }

    /// Records one delivery scheduled by the sharded runtime, tagged by
    /// whether it crossed a shard boundary.
    pub fn record_shard_hop(&mut self, cross_shard: bool) {
        if cross_shard {
            self.cross_shard += 1;
        } else {
            self.intra_shard += 1;
        }
    }

    /// Deliveries that stayed within their source shard (sharded runtime
    /// only; zero under the single-queue transport).
    pub fn intra_shard_sent(&self) -> u64 {
        self.intra_shard
    }

    /// Deliveries that crossed a shard boundary (sharded runtime only).
    pub fn cross_shard_sent(&self) -> u64 {
        self.cross_shard
    }

    /// Resets all counters (used between experiment phases).
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
        self.intra_shard = 0;
        self.cross_shard = 0;
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (id, classes) in &other.sent {
            let entry = self.sent.entry(*id).or_default();
            for (class, count) in classes.0.iter().enumerate() {
                entry.add(class as TrafficClass, *count);
            }
        }
        for (id, count) in &other.received {
            *self.received.entry(*id).or_insert(0) += count;
        }
        self.intra_shard += other.intra_shard;
        self.cross_shard += other.cross_shard;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TrafficClass = 0;
    const B: TrafficClass = 1;

    #[test]
    fn counters_accumulate_per_node_and_class() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(1), A);
        stats.record_sent(Id(1), A);
        stats.record_sent(Id(1), B);
        stats.record_sent(Id(2), B);
        stats.record_received(Id(2));

        assert_eq!(stats.sent_by(Id(1)), 3);
        assert_eq!(stats.sent_by_class(Id(1), A), 2);
        assert_eq!(stats.sent_by_class(Id(1), B), 1);
        assert_eq!(stats.sent_by(Id(2)), 1);
        assert_eq!(stats.sent_by(Id(3)), 0);
        assert_eq!(stats.received_by(Id(2)), 1);
        assert_eq!(stats.total_sent(), 4);
        assert_eq!(stats.total_sent_class(B), 2);
        assert_eq!(stats.active_nodes(), 2);
    }

    #[test]
    fn record_sent_n_skips_zero() {
        let mut stats = TrafficStats::new();
        stats.record_sent_n(Id(1), A, 0);
        assert_eq!(stats.total_sent(), 0);
        stats.record_sent_n(Id(1), A, 5);
        assert_eq!(stats.sent_by(Id(1)), 5);
    }

    #[test]
    fn reset_clears_everything() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(1), A);
        stats.record_received(Id(1));
        stats.reset();
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.received_by(Id(1)), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficStats::new();
        a.record_sent(Id(1), A);
        let mut b = TrafficStats::new();
        b.record_sent(Id(1), A);
        b.record_sent(Id(2), B);
        b.record_received(Id(1));
        a.merge(&b);
        assert_eq!(a.sent_by(Id(1)), 2);
        assert_eq!(a.sent_by(Id(2)), 1);
        assert_eq!(a.received_by(Id(1)), 1);
    }

    #[test]
    fn shard_hop_counters_accumulate_merge_and_reset() {
        let mut a = TrafficStats::new();
        a.record_shard_hop(false);
        a.record_shard_hop(true);
        a.record_shard_hop(true);
        assert_eq!(a.intra_shard_sent(), 1);
        assert_eq!(a.cross_shard_sent(), 2);
        let mut b = TrafficStats::new();
        b.record_shard_hop(false);
        b.merge(&a);
        assert_eq!(b.intra_shard_sent(), 2);
        assert_eq!(b.cross_shard_sent(), 2);
        b.reset();
        assert_eq!(b.intra_shard_sent(), 0);
        assert_eq!(b.cross_shard_sent(), 0);
    }

    #[test]
    fn account_route_charges_every_hop_sender() {
        let mut stats = TrafficStats::new();
        account_route(&mut stats, &[Id(1), Id(2), Id(3)], A);
        assert_eq!(stats.sent_by(Id(1)), 1);
        assert_eq!(stats.sent_by(Id(2)), 1);
        assert_eq!(stats.sent_by(Id(3)), 0, "the final receiver sends nothing");
        account_route(&mut stats, &[Id(9)], B);
        assert_eq!(stats.sent_by_class(Id(9), B), 1, "local delivery is one created message");
    }

    #[test]
    fn per_node_sent_reports_totals() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(7), A);
        stats.record_sent(Id(7), B);
        let per_node = stats.per_node_sent();
        assert_eq!(per_node.get(&Id(7)), Some(&2));
    }
}
