//! Per-node traffic accounting.

use rjoin_dht::{Id, RingBuildHasher};
use std::collections::HashMap;

/// A caller-defined class of traffic.
///
/// The paper reports the *total* traffic per node as well as the portion
/// spent on requesting RIC information (e.g. Figure 2(a), Figure 3(a)), so
/// every accounted message carries a class tag. The RJoin engine defines its
/// own constants; this crate only fixes the representation.
pub type TrafficClass = u8;

/// Per-class counters of one node: a flat vector indexed by class, grown on
/// demand. The engine uses a handful of small, dense class tags, so this is
/// both smaller and far faster than a per-class hash map.
#[derive(Debug, Clone, Default)]
struct ClassCounts(Vec<u64>);

impl ClassCounts {
    #[inline]
    fn add(&mut self, class: TrafficClass, count: u64) {
        let idx = class as usize;
        if idx >= self.0.len() {
            self.0.resize(idx + 1, 0);
        }
        self.0[idx] += count;
    }

    #[inline]
    fn get(&self, class: TrafficClass) -> u64 {
        self.0.get(class as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Per-node message counters, broken down by [`TrafficClass`].
///
/// Following the paper's definition, the traffic a node incurs is the number
/// of messages it has to **send**, which includes both the messages it
/// creates (RJoin-level messages) and the messages it forwards on behalf of
/// the DHT routing layer. Received messages are tracked separately for
/// diagnostics but are not part of the paper's traffic metric.
///
/// Accounting runs once per *hop*, making these the most frequently updated
/// counters in the simulation; node keys are ring identifiers (already
/// uniform), so the maps use the cheap [`RingBuildHasher`] instead of
/// SipHash.
#[derive(Debug, Clone, Default)]
pub struct TrafficStats {
    sent: HashMap<Id, ClassCounts, RingBuildHasher>,
    received: HashMap<Id, u64, RingBuildHasher>,
}

impl TrafficStats {
    /// Creates an empty set of counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one message sent by `node` (either created or routed).
    pub fn record_sent(&mut self, node: Id, class: TrafficClass) {
        self.sent.entry(node).or_default().add(class, 1);
    }

    /// Records `count` messages sent by `node`.
    pub fn record_sent_n(&mut self, node: Id, class: TrafficClass, count: u64) {
        if count > 0 {
            self.sent.entry(node).or_default().add(class, count);
        }
    }

    /// Records one message received by `node`.
    pub fn record_received(&mut self, node: Id) {
        *self.received.entry(node).or_insert(0) += 1;
    }

    /// Total messages sent by `node`, all classes combined.
    pub fn sent_by(&self, node: Id) -> u64 {
        self.sent.get(&node).map(ClassCounts::total).unwrap_or(0)
    }

    /// Messages of `class` sent by `node`.
    pub fn sent_by_class(&self, node: Id, class: TrafficClass) -> u64 {
        self.sent.get(&node).map(|m| m.get(class)).unwrap_or(0)
    }

    /// Messages received by `node`.
    pub fn received_by(&self, node: Id) -> u64 {
        self.received.get(&node).copied().unwrap_or(0)
    }

    /// Total messages sent across all nodes.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().map(ClassCounts::total).sum()
    }

    /// Total messages of `class` sent across all nodes.
    pub fn total_sent_class(&self, class: TrafficClass) -> u64 {
        self.sent.values().map(|m| m.get(class)).sum()
    }

    /// Per-node totals (all classes), for distribution plots.
    pub fn per_node_sent(&self) -> HashMap<Id, u64> {
        self.sent.iter().map(|(id, m)| (*id, m.total())).collect()
    }

    /// Number of nodes that sent at least one message.
    pub fn active_nodes(&self) -> usize {
        self.sent.values().filter(|m| m.total() > 0).count()
    }

    /// Resets all counters (used between experiment phases).
    pub fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (id, classes) in &other.sent {
            let entry = self.sent.entry(*id).or_default();
            for (class, count) in classes.0.iter().enumerate() {
                entry.add(class as TrafficClass, *count);
            }
        }
        for (id, count) in &other.received {
            *self.received.entry(*id).or_insert(0) += count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: TrafficClass = 0;
    const B: TrafficClass = 1;

    #[test]
    fn counters_accumulate_per_node_and_class() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(1), A);
        stats.record_sent(Id(1), A);
        stats.record_sent(Id(1), B);
        stats.record_sent(Id(2), B);
        stats.record_received(Id(2));

        assert_eq!(stats.sent_by(Id(1)), 3);
        assert_eq!(stats.sent_by_class(Id(1), A), 2);
        assert_eq!(stats.sent_by_class(Id(1), B), 1);
        assert_eq!(stats.sent_by(Id(2)), 1);
        assert_eq!(stats.sent_by(Id(3)), 0);
        assert_eq!(stats.received_by(Id(2)), 1);
        assert_eq!(stats.total_sent(), 4);
        assert_eq!(stats.total_sent_class(B), 2);
        assert_eq!(stats.active_nodes(), 2);
    }

    #[test]
    fn record_sent_n_skips_zero() {
        let mut stats = TrafficStats::new();
        stats.record_sent_n(Id(1), A, 0);
        assert_eq!(stats.total_sent(), 0);
        stats.record_sent_n(Id(1), A, 5);
        assert_eq!(stats.sent_by(Id(1)), 5);
    }

    #[test]
    fn reset_clears_everything() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(1), A);
        stats.record_received(Id(1));
        stats.reset();
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.received_by(Id(1)), 0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficStats::new();
        a.record_sent(Id(1), A);
        let mut b = TrafficStats::new();
        b.record_sent(Id(1), A);
        b.record_sent(Id(2), B);
        b.record_received(Id(1));
        a.merge(&b);
        assert_eq!(a.sent_by(Id(1)), 2);
        assert_eq!(a.sent_by(Id(2)), 1);
        assert_eq!(a.received_by(Id(1)), 1);
    }

    #[test]
    fn per_node_sent_reports_totals() {
        let mut stats = TrafficStats::new();
        stats.record_sent(Id(7), A);
        stats.record_sent(Id(7), B);
        let per_node = stats.per_node_sent();
        assert_eq!(per_node.get(&Id(7)), Some(&2));
    }
}
