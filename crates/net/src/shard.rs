//! The sharded event-queue runtime: N per-shard clocks with conservative
//! cross-shard synchronization.
//!
//! [`ShardedNetwork`] partitions the ring's nodes into `n` **shards** by
//! contiguous ring-identifier range. Each shard owns its own constant-δ
//! [`BucketQueue`], its own local virtual clock and its own traffic buffer,
//! and is driven by one persistent worker thread. Intra-shard messages are
//! scheduled straight into the shard's own queue; cross-shard messages go
//! through a per-shard inbox (the outbox/inbox exchange) and lower the
//! receiving shard's published event watermark.
//!
//! # The watermark protocol
//!
//! Every shard publishes a **low watermark** `low_s`: the smallest tick it
//! might still process (its current tick while mid-tick, else the earliest
//! arrival in its queue/inbox, else `∞`). Because every link has the same
//! constant delay δ ≥ 1, a shard processing tick `t` can only produce
//! arrivals at `max(clock, t) + δ > t` — so a shard may safely process its
//! next tick `t` as soon as
//!
//! ```text
//! t  <  min over all shards of low  +  δ
//! ```
//!
//! holds: no shard will ever emit a message arriving at or before `t`
//! again. This is the classic conservative (Chandy–Misra–Bryant) null-
//! message rule with lookahead δ, collapsed into shared-memory atomics: the
//! "null messages" are `fetch_max`/`fetch_min` updates of per-shard
//! watermark words, so synchronization costs a few atomic operations per
//! tick instead of a global barrier. δ ≥ 1 makes the protocol deadlock-free:
//! the shard holding the globally minimal watermark always satisfies the
//! rule for its own next tick (its own `low` *is* the minimum), processes
//! it, and thereby raises the minimum for everyone else.
//!
//! A second per-shard word, `handled_through`, records the last tick whose
//! **handlers** have all run. It is published *before* the shard applies the
//! tick's effects, which lets another shard's effect phase perform a
//! blocking-but-deadlock-free remote state read (the engine's RIC rate
//! lookups): a reader mid-tick `t` waits for `handled_through ≥ t`, and the
//! provider can always reach that point because running handlers never
//! blocks on remote state.
//!
//! # Determinism
//!
//! The global `(at, seq)` order of the single-queue [`Network`] cannot be
//! reproduced without serializing the run, so the sharded runtime replaces
//! the sequence counter with a **lineage**: a 128-bit identity derived by
//! hash-chaining from the message's causal parent ([`root_lineage`] /
//! [`child_lineage`]). Lineages are a pure function of the dataflow — they
//! do not depend on the shard count or on thread interleaving — so sorting
//! each tick's bucket by lineage gives every node a delivery order that is
//! identical across shard counts and across repeated runs.
//!
//! [`Network`]: crate::Network

use crate::queue::BucketQueue;
use crate::{KeyRouter, SimTime, TrafficClass, Transport};
use rjoin_dht::{ChordNetwork, DhtError, Id, LookupResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// The causal identity of one in-flight message under the sharded runtime:
/// a 128-bit hash chained from the message's parent. Within one tick,
/// deliveries are processed in ascending lineage order.
pub type Lineage = u128;

/// Sorts one drained bucket into ascending lineage order.
///
/// Message payloads are large (a pending query carries its whole rewritten
/// AST), so rather than letting a comparison sort shuffle them `n log n`
/// times, the 24-byte `(lineage, index)` pairs are sorted and the payloads
/// gathered once.
fn sort_by_lineage<M>(
    bucket: std::collections::VecDeque<ShardDelivery<M>>,
) -> Vec<ShardDelivery<M>> {
    if bucket.len() <= 1 {
        return bucket.into_iter().collect();
    }
    let mut slots: Vec<Option<ShardDelivery<M>>> = bucket.into_iter().map(Some).collect();
    let mut order: Vec<(Lineage, u32)> = slots
        .iter()
        .enumerate()
        .map(|(i, d)| (d.as_ref().expect("freshly filled").lineage, i as u32))
        .collect();
    order.sort_unstable();
    order
        .into_iter()
        .map(|(_, i)| slots[i as usize].take().expect("each index gathered once"))
        .collect()
}

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Lineage of the `i`-th root message of a drain (the messages already in
/// flight when the sharded run starts, numbered in their global `(at, seq)`
/// order). Roots are numbered identically whatever the shard count, so root
/// lineages are shard-count-invariant by construction.
pub fn root_lineage(i: u64) -> Lineage {
    let lo = mix64(i ^ 0xA076_1D64_78BD_642F);
    let hi = mix64(i ^ 0xE703_7ED1_A0B4_28DB);
    ((hi as u128) << 64) | (lo as u128)
}

/// Lineage of the `k`-th message sent while processing the delivery with
/// lineage `parent`. Hash-chaining keeps the identity a pure function of
/// the dataflow, so it is stable across shard counts; 128 bits make a
/// collision (which would make the intra-tick sort order ambiguous)
/// astronomically unlikely even across billions of messages.
pub fn child_lineage(parent: Lineage, k: u64) -> Lineage {
    let salt = mix64(k ^ 0x8EBC_6AF0_9C88_C6E3);
    let lo = mix64((parent as u64) ^ salt);
    let hi = mix64(((parent >> 64) as u64) ^ mix64(salt ^ 0x5896_59B2_29A6_0AED));
    ((hi as u128) << 64) | (lo as u128)
}

/// A 64-bit seed derived from `(base seed, lineage, k)` — the per-decision
/// randomness source of lineage-deterministic drivers (the engine seeds one
/// placement RNG per decision from the triggering delivery's lineage, so
/// decisions are independent of execution order and shard count). Lives
/// next to the lineage constructors so all lineage-derived hashing shares
/// one mixer.
pub fn lineage_seed(base: u64, lineage: Lineage, k: u64) -> u64 {
    let lo = lineage as u64;
    let hi = (lineage >> 64) as u64;
    mix64(base ^ mix64(lo ^ mix64(hi ^ mix64(k))))
}

/// A delivery scheduled under the sharded runtime.
#[derive(Debug)]
pub struct ShardDelivery<M> {
    /// Arrival tick.
    pub at: SimTime,
    /// Causal identity; the intra-tick order key.
    pub lineage: Lineage,
    /// Receiving node.
    pub to: Id,
    /// Originating node.
    pub from: Id,
    /// The payload.
    pub msg: M,
}

/// Assignment of ring nodes to shards by contiguous identifier range.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// First node identifier of each shard's range, ascending. Identifiers
    /// below `starts[0]` wrap around to the last shard.
    starts: Vec<Id>,
}

impl ShardMap {
    /// Splits `node_ids` (any order) into `shards` contiguous ranges of
    /// near-equal node count. `shards` is clamped to `1..=node_ids.len()`.
    pub fn new(node_ids: &[Id], shards: usize) -> Self {
        let mut sorted: Vec<Id> = node_ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let shards = shards.clamp(1, sorted.len().max(1));
        let chunk = sorted.len().div_ceil(shards.max(1)).max(1);
        let starts: Vec<Id> = sorted.chunks(chunk).map(|c| c[0]).collect();
        ShardMap { starts: if starts.is_empty() { vec![Id(0)] } else { starts } }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len()
    }

    /// The shard responsible for ring identifier `id`. Identifiers below the
    /// first range start wrap to the last shard (ring order).
    pub fn shard_of(&self, id: Id) -> usize {
        let idx = self.starts.partition_point(|s| *s <= id);
        if idx == 0 {
            self.starts.len() - 1
        } else {
            idx - 1
        }
    }
}

/// Published synchronization state of one shard.
#[derive(Debug)]
struct ShardSync {
    /// Low watermark: smallest tick this shard might still process.
    low: AtomicU64,
    /// Handlers of all deliveries with `at <=` this value have run.
    handled_through: AtomicU64,
}

/// The per-worker (thread-owned) half of one shard.
#[derive(Debug)]
pub struct ShardLocal<M> {
    shard: usize,
    queue: BucketQueue<ShardDelivery<M>>,
    /// Sequential-semantics clock: `max(floor, last processed tick)`. Sends
    /// are scheduled `clock + δ`, exactly as under the single queue.
    clock: SimTime,
    traffic: crate::TrafficStats,
    /// Ticks this worker processed.
    pub ticks: u64,
    /// Deliveries this worker processed.
    pub deliveries: u64,
    /// Times this worker's effect phase blocked on a remote watermark.
    pub blocked_reads: u64,
}

/// Outcome of one [`ShardHandle::poll`] call.
#[derive(Debug)]
pub enum ShardPoll<M> {
    /// The next safe tick of this shard, with its deliveries sorted by
    /// lineage and the shard's (floor-clamped) clock after advancing to it.
    Tick {
        /// The arrival tick being processed.
        tick: SimTime,
        /// The shard clock, i.e. `max(floor, tick)`.
        now: SimTime,
        /// The tick's deliveries in ascending lineage order.
        deliveries: Vec<ShardDelivery<M>>,
    },
    /// No message is in flight anywhere: the drain is complete.
    Quiescent,
    /// Another worker aborted the run.
    Aborted,
}

/// The sharded event-queue runtime for one drain.
///
/// Built from the shared Chord ring plus the global queue's in-flight
/// messages; per-shard state is handed to worker threads via
/// [`take_local`](Self::take_local) and driven through [`ShardHandle`]s.
#[derive(Debug)]
pub struct ShardedNetwork<'a, M> {
    dht: &'a ChordNetwork,
    delay: SimTime,
    floor: SimTime,
    map: ShardMap,
    sync: Vec<ShardSync>,
    inboxes: Vec<Mutex<Vec<ShardDelivery<M>>>>,
    inflight: AtomicU64,
    max_now: AtomicU64,
    aborted: AtomicBool,
    /// Set by the cooperative (single-threaded) scheduler: nobody ever
    /// sleeps on the progress condvar, so wakeups are skipped entirely.
    cooperative: AtomicBool,
    progress: Mutex<u64>,
    progress_cv: Condvar,
    locals: Vec<Option<ShardLocal<M>>>,
    roots: u64,
}

impl<'a, M> ShardedNetwork<'a, M> {
    /// Creates the runtime: `shards` per-shard queues over the nodes of
    /// `node_ids`, message delay `delay`, all clocks starting at `floor`
    /// (the global clock when the drain begins).
    pub fn new(
        dht: &'a ChordNetwork,
        delay: SimTime,
        floor: SimTime,
        node_ids: &[Id],
        shards: usize,
    ) -> Self {
        let map = ShardMap::new(node_ids, shards);
        let n = map.shards();
        ShardedNetwork {
            dht,
            delay: delay.max(1),
            floor,
            map,
            sync: (0..n)
                .map(|_| ShardSync {
                    low: AtomicU64::new(u64::MAX),
                    handled_through: AtomicU64::new(0),
                })
                .collect(),
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            inflight: AtomicU64::new(0),
            max_now: AtomicU64::new(floor),
            aborted: AtomicBool::new(false),
            cooperative: AtomicBool::new(false),
            progress: Mutex::new(0),
            progress_cv: Condvar::new(),
            locals: (0..n)
                .map(|shard| {
                    Some(ShardLocal {
                        shard,
                        queue: BucketQueue::new(),
                        clock: floor,
                        traffic: crate::TrafficStats::new(),
                        ticks: 0,
                        deliveries: 0,
                        blocked_reads: 0,
                    })
                })
                .collect(),
            roots: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// The shard that owns node `id`.
    pub fn shard_of(&self, id: Id) -> usize {
        self.map.shard_of(id)
    }

    /// The shard-range map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The drain's starting clock.
    pub fn floor(&self) -> SimTime {
        self.floor
    }

    /// The highest clock value any shard reached (the global clock after the
    /// drain).
    pub fn final_clock(&self) -> SimTime {
        self.max_now.load(Ordering::SeqCst)
    }

    /// Seeds one already-in-flight message (called before the workers start,
    /// in the global `(at, seq)` pop order of the single queue so root
    /// lineages are shard-count-invariant).
    pub fn seed(&mut self, at: SimTime, to: Id, from: Id, msg: M) {
        let lineage = root_lineage(self.roots);
        self.roots += 1;
        let shard = self.map.shard_of(to);
        let local = self.locals[shard].as_mut().expect("seeding happens before take_local");
        local.queue.push(at, ShardDelivery { at, lineage, to, from, msg });
        let low = local.queue.next_time().unwrap_or(u64::MAX);
        self.sync[shard].low.store(low, Ordering::SeqCst);
        *self.inflight.get_mut() += 1;
    }

    /// Hands out shard `i`'s thread-owned state. Panics if taken twice.
    pub fn take_local(&mut self, shard: usize) -> ShardLocal<M> {
        self.locals[shard].take().expect("each shard's local state is taken exactly once")
    }

    /// Marks the run aborted (a worker hit an error); all other workers see
    /// [`ShardPoll::Aborted`] on their next poll and blocked waits return.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        self.bump();
    }

    /// Whether the run was aborted.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Declares that a single thread drives every shard (the cooperative
    /// scheduler): condvar wakeups become no-ops.
    pub fn set_cooperative(&self, on: bool) {
        self.cooperative.store(on, Ordering::SeqCst);
    }

    fn bump(&self) {
        if self.cooperative.load(Ordering::Relaxed) {
            return;
        }
        let mut gen = self.progress.lock().expect("progress lock");
        *gen = gen.wrapping_add(1);
        self.progress_cv.notify_all();
    }

    /// Spins briefly, then parks on the progress condvar until `pred` holds.
    /// A 1 ms timeout re-checks the predicate unconditionally, so no lost
    /// wakeup can hang the run.
    fn wait_until(&self, pred: impl Fn() -> bool) {
        for _ in 0..128 {
            if pred() {
                return;
            }
            std::hint::spin_loop();
        }
        loop {
            if pred() {
                return;
            }
            let gen = self.progress.lock().expect("progress lock");
            if pred() {
                return;
            }
            let start = *gen;
            let (gen, _) = self
                .progress_cv
                .wait_timeout_while(gen, Duration::from_millis(1), |g| *g == start)
                .expect("progress lock");
            drop(gen);
        }
    }

    fn global_min_low(&self) -> u64 {
        self.sync.iter().map(|s| s.low.load(Ordering::SeqCst)).min().unwrap_or(u64::MAX)
    }

    /// Publishes that *every* shard's handlers have run through tick `t`.
    /// Called by the cooperative scheduler after it finished tick `t`'s
    /// handler phase on every shard, so effect-phase remote reads never
    /// block (there is no second thread to unblock them).
    pub fn mark_all_handled(&self, t: SimTime) {
        for sync in &self.sync {
            sync.handled_through.fetch_max(t, Ordering::SeqCst);
        }
    }
}

/// One worker's view of the sharded runtime: its owned [`ShardLocal`] plus
/// the shared fabric. Implements [`Transport`] for the effect phase.
#[derive(Debug)]
pub struct ShardHandle<'n, 'a, M> {
    net: &'n ShardedNetwork<'a, M>,
    local: ShardLocal<M>,
    /// Lineage of the delivery whose effects are being applied.
    parent: Lineage,
    /// Sends performed while applying the current delivery's effects.
    children: u64,
}

impl<'n, 'a, M> ShardHandle<'n, 'a, M> {
    /// Wraps a taken [`ShardLocal`] for use on a worker thread.
    pub fn new(net: &'n ShardedNetwork<'a, M>, local: ShardLocal<M>) -> Self {
        ShardHandle { net, local, parent: 0, children: 0 }
    }

    /// This worker's shard index.
    pub fn shard(&self) -> usize {
        self.local.shard
    }

    /// The shard that owns node `id`.
    pub fn shard_of(&self, id: Id) -> usize {
        self.net.map.shard_of(id)
    }

    /// Returns the thread-owned state (after the drain, for merging).
    pub fn into_local(self) -> ShardLocal<M> {
        self.local
    }

    /// Read access to this shard's traffic buffer.
    pub fn traffic(&self) -> &crate::TrafficStats {
        &self.local.traffic
    }

    /// Sets the causal parent for subsequent sends: every message scheduled
    /// until the next call gets lineage `child_lineage(parent, k)` with `k`
    /// counting up from 0.
    pub fn begin_effect(&mut self, parent: Lineage) {
        self.parent = parent;
        self.children = 0;
    }

    /// Drains the inbox into the local queue and publishes the shard's low
    /// watermark. Loops until the inbox is observed empty *after* the
    /// publish, so a racing cross-shard push can never be missed.
    fn sync_low(&mut self) {
        loop {
            let drained: Vec<ShardDelivery<M>> = {
                let mut inbox = self.net.inboxes[self.local.shard].lock().expect("inbox lock");
                std::mem::take(&mut *inbox)
            };
            for d in drained {
                self.local.queue.push(d.at, d);
            }
            let low = self.local.queue.next_time().unwrap_or(u64::MAX);
            self.net.sync[self.local.shard].low.store(low, Ordering::SeqCst);
            if self.net.inboxes[self.local.shard].lock().expect("inbox lock").is_empty() {
                return;
            }
        }
    }

    /// The arrival time of this shard's earliest pending delivery (after
    /// draining the inbox), or `None` when the shard is empty. Used by the
    /// cooperative single-threaded scheduler.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.sync_low();
        self.local.queue.next_time()
    }

    /// Pops this shard's next bucket **iff** it is scheduled exactly at
    /// `tick`, without any watermark waiting — the cooperative scheduler
    /// has already established that `tick` is the global minimum, which is
    /// a stronger guarantee than the watermark rule. The inbox is *not*
    /// re-drained: the scheduler runs on one thread and has already synced
    /// via [`next_event_time`](Self::next_event_time) this round, and no
    /// send can have happened since. Returns the floor-clamped clock and
    /// the lineage-sorted deliveries.
    pub fn try_take_tick(&mut self, tick: SimTime) -> Option<(SimTime, Vec<ShardDelivery<M>>)> {
        if self.local.queue.next_time() != Some(tick) {
            return None;
        }
        let (at, bucket) = self.local.queue.pop_bucket().expect("next_time returned Some");
        debug_assert_eq!(at, tick);
        let deliveries = sort_by_lineage(bucket);
        self.local.clock = self.local.clock.max(tick);
        self.local.ticks += 1;
        self.local.deliveries += deliveries.len() as u64;
        Some((self.local.clock, deliveries))
    }

    /// Blocks until the next safe tick for this shard, global quiescence, or
    /// an abort. The returned deliveries are sorted by lineage.
    pub fn poll(&mut self) -> ShardPoll<M> {
        loop {
            if self.net.is_aborted() {
                return ShardPoll::Aborted;
            }
            self.sync_low();
            let next = self.local.queue.next_time();
            let g = self.net.global_min_low();
            if let Some(t) = next {
                if t < g.saturating_add(self.net.delay) {
                    let (at, bucket) =
                        self.local.queue.pop_bucket().expect("next_time returned Some");
                    debug_assert_eq!(at, t);
                    let deliveries = sort_by_lineage(bucket);
                    self.local.clock = self.local.clock.max(t);
                    self.local.ticks += 1;
                    self.local.deliveries += deliveries.len() as u64;
                    // `low` stays at `t` (published by sync_low) while this
                    // tick is being processed: peers may not run past it.
                    return ShardPoll::Tick { tick: t, now: self.local.clock, deliveries };
                }
            }
            if self.net.inflight.load(Ordering::SeqCst) == 0 {
                return ShardPoll::Quiescent;
            }
            // Idle: nothing processable below the global bound. Everything
            // strictly below min(next, g + δ) is settled — raise the handled
            // watermark so remote readers blocked on this shard make
            // progress, then sleep until the picture changes.
            let bound = next.unwrap_or(u64::MAX).min(g.saturating_add(self.net.delay));
            if bound > 0 {
                let prev = self.net.sync[self.local.shard]
                    .handled_through
                    .fetch_max(bound - 1, Ordering::SeqCst);
                if prev < bound - 1 {
                    self.net.bump();
                }
            }
            let net = self.net;
            let shard = self.local.shard;
            net.wait_until(|| {
                net.is_aborted()
                    || net.inflight.load(Ordering::SeqCst) == 0
                    || net.global_min_low() != g
                    || !net.inboxes[shard].lock().expect("inbox lock").is_empty()
            });
        }
    }

    /// Publishes that every handler of tick `t` has run on this shard.
    /// Must be called between the handler phase and the effect phase, so
    /// remote readers can proceed while this shard applies effects.
    pub fn mark_handled(&self, t: SimTime) {
        self.net.sync[self.local.shard].handled_through.fetch_max(t, Ordering::SeqCst);
        self.net.bump();
    }

    /// Completes the current tick: `n` deliveries leave the in-flight set
    /// and the global clock high-water mark advances to `now`.
    pub fn finish_tick(&mut self, n: usize, now: SimTime) {
        self.net.max_now.fetch_max(now, Ordering::SeqCst);
        self.net.inflight.fetch_sub(n as u64, Ordering::SeqCst);
        self.net.bump();
    }

    /// Blocks until shard `shard`'s handlers have run through tick `t`.
    /// Returns `false` if the run was aborted while waiting. Deadlock-free:
    /// providers publish `handled_through` before their own effect phase,
    /// and idle shards keep raising it as the global watermark advances.
    pub fn wait_handled(&mut self, shard: usize, t: SimTime) -> bool {
        if shard == self.local.shard
            || self.net.sync[shard].handled_through.load(Ordering::SeqCst) >= t
        {
            return true;
        }
        self.local.blocked_reads += 1;
        let net = self.net;
        net.wait_until(|| {
            net.is_aborted() || net.sync[shard].handled_through.load(Ordering::SeqCst) >= t
        });
        !net.is_aborted()
    }

    /// Schedules `msg` for delivery to node `to` one delay bound from now.
    fn schedule(&mut self, to: Id, from: Id, msg: M) {
        let at = self.local.clock + self.net.delay;
        let lineage = child_lineage(self.parent, self.children);
        self.children += 1;
        let delivery = ShardDelivery { at, lineage, to, from, msg };
        let target = self.net.map.shard_of(to);
        self.net.inflight.fetch_add(1, Ordering::SeqCst);
        if target == self.local.shard {
            self.local.traffic.record_shard_hop(false);
            self.local.queue.push(at, delivery);
        } else {
            self.local.traffic.record_shard_hop(true);
            self.net.inboxes[target].lock().expect("inbox lock").push(delivery);
            self.net.sync[target].low.fetch_min(at, Ordering::SeqCst);
        }
    }
}

impl<M> KeyRouter for ShardHandle<'_, '_, M> {
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError> {
        self.net.dht.successor_of(key_id)
    }
}

impl<M> Transport<M> for ShardHandle<'_, '_, M> {
    fn now(&self) -> SimTime {
        self.local.clock
    }

    fn delay(&self) -> SimTime {
        self.net.delay
    }

    fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: M,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let result = self.net.dht.lookup_stable(from, key_id)?;
        crate::traffic::account_route(&mut self.local.traffic, result.path(), class);
        self.local.traffic.record_received(result.owner);
        self.schedule(result.owner, from, msg);
        Ok(result)
    }

    fn send_direct(&mut self, from: Id, to: Id, msg: M, class: TrafficClass) {
        self.local.traffic.record_sent(from, class);
        self.local.traffic.record_received(to);
        self.schedule(to, from, msg);
    }

    fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let result = self.net.dht.lookup_stable(from, key_id)?;
        crate::traffic::account_route(&mut self.local.traffic, result.path(), class);
        Ok(result)
    }

    fn charge_direct(&mut self, from: Id, class: TrafficClass) {
        self.local.traffic.record_sent(from, class);
    }
}

impl<M> ShardLocal<M> {
    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard's traffic buffer (merged into the global stats after the
    /// drain).
    pub fn traffic(&self) -> &crate::TrafficStats {
        &self.traffic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineages_are_stable_and_distinct() {
        assert_eq!(root_lineage(7), root_lineage(7));
        assert_ne!(root_lineage(7), root_lineage(8));
        let p = root_lineage(3);
        assert_eq!(child_lineage(p, 0), child_lineage(p, 0));
        assert_ne!(child_lineage(p, 0), child_lineage(p, 1));
        assert_ne!(child_lineage(p, 0), child_lineage(root_lineage(4), 0));
    }

    #[test]
    fn shard_map_partitions_contiguously_and_covers_all_ids() {
        let ids: Vec<Id> = (0..40).map(|i| Id(i * 100 + 5)).collect();
        let map = ShardMap::new(&ids, 4);
        assert_eq!(map.shards(), 4);
        // Every node id maps to a shard; contiguous ids map to contiguous
        // shards in ring order.
        let shards: Vec<usize> = ids.iter().map(|id| map.shard_of(*id)).collect();
        assert!(shards.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(shards[0], 0);
        assert_eq!(*shards.last().unwrap(), 3);
        // Identifiers below the first node wrap to the last shard.
        assert_eq!(map.shard_of(Id(0)), 3);
        // Arbitrary (non-node) identifiers map deterministically.
        assert_eq!(map.shard_of(Id(12_345)), map.shard_of(Id(12_345)));
    }

    #[test]
    fn shard_count_is_clamped_to_node_count() {
        let ids: Vec<Id> = (0..3).map(|i| Id(i + 1)).collect();
        assert_eq!(ShardMap::new(&ids, 16).shards(), 3);
        assert_eq!(ShardMap::new(&ids, 0).shards(), 1);
    }

    #[test]
    fn single_shard_drain_delivers_in_lineage_order() {
        let mut dht = ChordNetwork::new(4);
        let a = Id::hash_key("shard-test-a");
        let b = Id::hash_key("shard-test-b");
        dht.join(a).unwrap();
        dht.join(b).unwrap();
        dht.full_stabilize();

        let mut net: ShardedNetwork<'_, &str> = ShardedNetwork::new(&dht, 1, 0, &[a, b], 1);
        net.seed(1, a, b, "r1");
        net.seed(1, b, a, "r0");
        let local = net.take_local(0);
        let mut handle = ShardHandle::new(&net, local);

        let ShardPoll::Tick { tick, deliveries, .. } = handle.poll() else {
            panic!("expected a tick");
        };
        assert_eq!(tick, 1);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries[0].lineage < deliveries[1].lineage);
        handle.mark_handled(tick);
        // Send a child during the effect phase, then finish the tick.
        handle.begin_effect(deliveries[0].lineage);
        handle.send_direct(a, b, "child", 0);
        handle.finish_tick(deliveries.len(), 1);

        let ShardPoll::Tick { tick, deliveries, .. } = handle.poll() else {
            panic!("expected the child tick");
        };
        assert_eq!(tick, 2);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].msg, "child");
        handle.mark_handled(tick);
        handle.finish_tick(1, 2);
        assert!(matches!(handle.poll(), ShardPoll::Quiescent));
        assert_eq!(net.final_clock(), 2);
    }
}
