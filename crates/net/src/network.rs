//! The simulated network: DHT-routed delivery with bounded delay.

use crate::queue::BucketQueue;
use crate::{KeyRouter, SimTime, TrafficClass, TrafficStats, Transport};
use rjoin_dht::{ChordNetwork, DhtError, Id, LookupResult};

/// Configuration of the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Upper bound δ on the delivery delay of a single message, in ticks.
    /// Every routed or direct message is delivered `delay` ticks after it is
    /// sent (the worst case allowed by the paper's system model).
    pub delay: SimTime,
    /// Length of the successor lists maintained by the Chord nodes.
    pub successor_list_len: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { delay: 1, successor_list_len: 4 }
    }
}

/// A message delivered to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Simulation time at which the message arrives.
    pub at: SimTime,
    /// Scheduling sequence number: deliveries at the same tick are ordered
    /// by it (FIFO in send order), and `(at, seq)` is a unique, totally
    /// ordered identity for every delivery of a run.
    pub seq: u64,
    /// The node receiving the message.
    pub to: Id,
    /// The node that originally sent the message.
    pub from: Id,
    /// The payload.
    pub msg: M,
}

/// Internal queue entry; buckets keep entries in (time, sequence) order.
///
/// Every message is scheduled `δ` ticks after the (monotone) clock, so
/// arrival times enter the [`BucketQueue`] in non-decreasing order and
/// entries within a bucket are FIFO by sequence number: draining a whole
/// bucket yields exactly the global `(at, seq)` order a binary heap would
/// have produced, at O(1) per event.
#[derive(Debug)]
struct Scheduled<M> {
    seq: u64,
    to: Id,
    from: Id,
    msg: M,
}

/// The simulated network: a Chord ring plus an event queue of in-flight
/// messages and per-node traffic accounting.
#[derive(Debug)]
pub struct Network<M> {
    dht: ChordNetwork,
    config: NetworkConfig,
    clock: SimTime,
    seq: u64,
    queue: BucketQueue<Scheduled<M>>,
    traffic: TrafficStats,
}

impl<M> Network<M> {
    /// Creates an empty network.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            dht: ChordNetwork::new(config.successor_list_len),
            config,
            clock: 0,
            seq: 0,
            queue: BucketQueue::new(),
            traffic: TrafficStats::new(),
        }
    }

    /// Adds `n` nodes with deterministic identifiers derived from `label`
    /// and fully stabilizes the ring. Returns the node identifiers.
    pub fn bootstrap(&mut self, n: usize, label: &str) -> Vec<Id> {
        let mut ids = Vec::with_capacity(n);
        let mut i = 0u64;
        while ids.len() < n {
            let id = Id::hash_key(&format!("{label}-{i}"));
            i += 1;
            if self.dht.join(id).is_ok() {
                ids.push(id);
            }
        }
        self.dht.full_stabilize();
        ids
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advances the clock (used by drivers to model idle periods).
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.clock {
            self.clock = t;
        }
    }

    /// The configured per-message delay bound δ.
    pub fn delay(&self) -> SimTime {
        self.config.delay
    }

    /// Read access to the underlying Chord ring.
    pub fn dht(&self) -> &ChordNetwork {
        &self.dht
    }

    /// Write access to the underlying Chord ring (node churn, identifier
    /// movement).
    pub fn dht_mut(&mut self) -> &mut ChordNetwork {
        &mut self.dht
    }

    /// Read access to the traffic counters.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Write access to the traffic counters (reset between phases).
    pub fn traffic_mut(&mut self) -> &mut TrafficStats {
        &mut self.traffic
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Resolves the node currently responsible for `key_id` without sending
    /// anything and without accounting traffic (an oracle used by tests and
    /// by the engine for ownership checks).
    pub fn owner_of(&self, key_id: Id) -> Result<Id, DhtError> {
        self.dht.successor_of(key_id)
    }

    fn account_path(&mut self, path: &[Id], class: TrafficClass) {
        crate::traffic::account_route(&mut self.traffic, path, class);
    }

    fn schedule(&mut self, at: SimTime, to: Id, from: Id, msg: M) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, Scheduled { seq, to, from, msg });
    }

    /// `send(msg, id)`: routes `msg` from node `from` to `Successor(key_id)`
    /// through the DHT, accounting one message per hop under `class`, and
    /// schedules its delivery after the delay bound. Returns the lookup
    /// result (owner and path).
    pub fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: M,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let result = self.dht.lookup(from, key_id)?;
        self.account_path(result.path(), class);
        self.traffic.record_received(result.owner);
        let at = self.clock + self.config.delay;
        self.schedule(at, result.owner, from, msg);
        Ok(result)
    }

    /// `multiSend(M, I)`: routes each `(key_id, msg)` pair independently, as
    /// the paper's API does (cost `h * O(log N)` hops).
    pub fn multi_send(
        &mut self,
        from: Id,
        items: Vec<(Id, M)>,
        class: TrafficClass,
    ) -> Result<Vec<LookupResult>, DhtError> {
        let mut results = Vec::with_capacity(items.len());
        for (key_id, msg) in items {
            results.push(self.send(from, key_id, msg, class)?);
        }
        Ok(results)
    }

    /// `sendDirect(msg, addr)`: delivers `msg` to a node whose address is
    /// already known, in one hop.
    pub fn send_direct(&mut self, from: Id, to: Id, msg: M, class: TrafficClass) {
        self.traffic.record_sent(from, class);
        self.traffic.record_received(to);
        let at = self.clock + self.config.delay;
        self.schedule(at, to, from, msg);
    }

    /// Accounts the traffic of routing one message from `from` to
    /// `Successor(key_id)` without scheduling a delivery. Used to model
    /// synchronous request/response exchanges (such as RIC-information
    /// requests) whose *content* the engine resolves immediately but whose
    /// *cost* must still be charged.
    pub fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        let result = self.dht.lookup(from, key_id)?;
        self.account_path(result.path(), class);
        Ok(result)
    }

    /// Accounts one direct (single-hop) message from `from` without
    /// scheduling a delivery. Companion of [`charge_route`](Self::charge_route).
    pub fn charge_direct(&mut self, from: Id, class: TrafficClass) {
        self.traffic.record_sent(from, class);
    }

    /// Pops the next delivery, advancing the clock to its arrival time.
    /// Returns `None` when no messages are in flight.
    pub fn pop_next(&mut self) -> Option<Delivery<M>> {
        let (at, next) = self.queue.pop_front()?;
        self.clock = self.clock.max(at);
        Some(Delivery { at, seq: next.seq, to: next.to, from: next.from, msg: next.msg })
    }

    /// The arrival tick of the earliest in-flight message, if any.
    pub fn next_delivery_time(&self) -> Option<SimTime> {
        self.queue.next_time()
    }

    /// Drains *every* delivery of the earliest occupied tick at once,
    /// advancing the clock to that tick. The returned deliveries are in
    /// `(at, seq)` order — exactly the order repeated [`pop_next`] calls
    /// would have produced — so a driver can batch-process one tick (e.g.
    /// fan the deliveries out across cores) without changing the event
    /// order.
    ///
    /// [`pop_next`]: Self::pop_next
    pub fn pop_tick(&mut self) -> Option<(SimTime, Vec<Delivery<M>>)> {
        let (at, bucket) = self.queue.pop_bucket()?;
        self.clock = self.clock.max(at);
        let deliveries = bucket
            .into_iter()
            .map(|s| Delivery { at, seq: s.seq, to: s.to, from: s.from, msg: s.msg })
            .collect();
        Some((at, deliveries))
    }

    /// Removes *every* in-flight message in `(at, seq)` order **without**
    /// advancing the clock. Used to hand the pending event set over to a
    /// [`ShardedNetwork`](crate::ShardedNetwork) drain: the sharded runtime
    /// re-schedules the messages into its per-shard queues and reports the
    /// final clock back via [`advance_to`](Self::advance_to).
    pub fn drain_in_flight(&mut self) -> Vec<Delivery<M>> {
        let mut drained = Vec::with_capacity(self.queue.len());
        while let Some((at, bucket)) = self.queue.pop_bucket() {
            drained.extend(bucket.into_iter().map(|s| Delivery {
                at,
                seq: s.seq,
                to: s.to,
                from: s.from,
                msg: s.msg,
            }));
        }
        drained
    }
}

impl<M> KeyRouter for Network<M> {
    fn owner_of(&self, key_id: Id) -> Result<Id, DhtError> {
        Network::owner_of(self, key_id)
    }
}

impl<M> Transport<M> for Network<M> {
    fn now(&self) -> SimTime {
        Network::now(self)
    }

    fn delay(&self) -> SimTime {
        Network::delay(self)
    }

    fn send(
        &mut self,
        from: Id,
        key_id: Id,
        msg: M,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        Network::send(self, from, key_id, msg, class)
    }

    fn send_direct(&mut self, from: Id, to: Id, msg: M, class: TrafficClass) {
        Network::send_direct(self, from, to, msg, class)
    }

    fn charge_route(
        &mut self,
        from: Id,
        key_id: Id,
        class: TrafficClass,
    ) -> Result<LookupResult, DhtError> {
        Network::charge_route(self, from, key_id, class)
    }

    fn charge_direct(&mut self, from: Id, class: TrafficClass) {
        Network::charge_direct(self, from, class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLASS_A: TrafficClass = 0;
    const CLASS_B: TrafficClass = 1;

    fn network(n: usize) -> (Network<&'static str>, Vec<Id>) {
        let mut net = Network::new(NetworkConfig { delay: 5, successor_list_len: 4 });
        let ids = net.bootstrap(n, "net-test");
        (net, ids)
    }

    #[test]
    fn bootstrap_creates_requested_nodes() {
        let (net, ids) = network(50);
        assert_eq!(ids.len(), 50);
        assert_eq!(net.dht().len(), 50);
    }

    #[test]
    fn send_delivers_to_owner_after_delay() {
        let (mut net, ids) = network(20);
        let key = Id::hash_key("some-key");
        let expected_owner = net.owner_of(key).unwrap();
        let result = net.send(ids[0], key, "hello", CLASS_A).unwrap();
        assert_eq!(result.owner, expected_owner);
        assert_eq!(net.in_flight(), 1);

        let delivery = net.pop_next().unwrap();
        assert_eq!(delivery.to, expected_owner);
        assert_eq!(delivery.from, ids[0]);
        assert_eq!(delivery.msg, "hello");
        assert_eq!(delivery.at, 5);
        assert_eq!(net.now(), 5);
        assert!(net.pop_next().is_none());
    }

    #[test]
    fn traffic_counts_one_message_per_hop() {
        let (mut net, ids) = network(30);
        let key = Id::hash_key("another-key");
        let result = net.send(ids[0], key, "payload", CLASS_A).unwrap();
        let total = net.traffic().total_sent();
        assert_eq!(total, result.hops().max(1) as u64);
        // The sender is charged at least one message.
        assert!(net.traffic().sent_by(ids[0]) >= 1);
    }

    #[test]
    fn classes_are_accounted_separately() {
        let (mut net, ids) = network(30);
        net.send(ids[0], Id::hash_key("k1"), "a", CLASS_A).unwrap();
        net.send(ids[1], Id::hash_key("k2"), "b", CLASS_B).unwrap();
        let a = net.traffic().total_sent_class(CLASS_A);
        let b = net.traffic().total_sent_class(CLASS_B);
        assert!(a >= 1);
        assert!(b >= 1);
        assert_eq!(net.traffic().total_sent(), a + b);
    }

    #[test]
    fn multi_send_delivers_every_item() {
        let (mut net, ids) = network(25);
        let items = vec![
            (Id::hash_key("x"), "to-x"),
            (Id::hash_key("y"), "to-y"),
            (Id::hash_key("z"), "to-z"),
        ];
        net.multi_send(ids[2], items, CLASS_A).unwrap();
        assert_eq!(net.in_flight(), 3);
        let mut seen = Vec::new();
        while let Some(d) = net.pop_next() {
            seen.push(d.msg);
        }
        seen.sort();
        assert_eq!(seen, vec!["to-x", "to-y", "to-z"]);
    }

    #[test]
    fn send_direct_costs_one_message() {
        let (mut net, ids) = network(10);
        net.send_direct(ids[0], ids[5], "direct", CLASS_B);
        assert_eq!(net.traffic().sent_by(ids[0]), 1);
        assert_eq!(net.traffic().total_sent(), 1);
        let d = net.pop_next().unwrap();
        assert_eq!(d.to, ids[5]);
        assert_eq!(d.msg, "direct");
    }

    #[test]
    fn deliveries_are_ordered_by_time_then_fifo() {
        let (mut net, ids) = network(10);
        net.send_direct(ids[0], ids[1], "first", CLASS_A);
        net.send_direct(ids[0], ids[2], "second", CLASS_A);
        net.advance_to(100);
        net.send_direct(ids[0], ids[3], "third", CLASS_A);
        let order: Vec<&str> = std::iter::from_fn(|| net.pop_next().map(|d| d.msg)).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn pop_tick_drains_one_tick_in_seq_order() {
        let (mut net, ids) = network(10);
        net.send_direct(ids[0], ids[1], "a", CLASS_A);
        net.send_direct(ids[0], ids[2], "b", CLASS_A);

        assert_eq!(net.next_delivery_time(), Some(5));
        let (at, batch) = net.pop_tick().unwrap();
        assert_eq!(at, 5);
        assert_eq!(net.now(), 5);
        net.advance_to(100);
        net.send_direct(ids[0], ids[3], "later", CLASS_A);
        let msgs: Vec<&str> = batch.iter().map(|d| d.msg).collect();
        assert_eq!(msgs, vec!["a", "b"]);
        assert!(batch.windows(2).all(|w| w[0].seq < w[1].seq), "FIFO by seq");

        let (at, batch) = net.pop_tick().unwrap();
        assert_eq!(at, 105);
        assert_eq!(batch.len(), 1);
        assert!(net.pop_tick().is_none());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn pop_tick_and_pop_next_agree_on_order() {
        let build = |n: usize| {
            let mut net = Network::new(NetworkConfig { delay: 3, successor_list_len: 4 });
            let ids = net.bootstrap(n, "order-test");
            for round in 0..4u64 {
                net.advance_to(round * 2);
                for i in 0..5 {
                    net.send_direct(ids[i], ids[(i + 1) % n], (round, i), CLASS_A);
                }
            }
            net
        };
        let mut by_pop = build(8);
        let mut by_tick = build(8);
        let singles: Vec<(SimTime, u64, (u64, usize))> =
            std::iter::from_fn(|| by_pop.pop_next().map(|d| (d.at, d.seq, d.msg))).collect();
        let mut batched = Vec::new();
        while let Some((at, batch)) = by_tick.pop_tick() {
            for d in batch {
                batched.push((at, d.seq, d.msg));
            }
        }
        assert_eq!(singles, batched);
    }

    #[test]
    fn out_of_order_push_is_still_delivered_in_time_order() {
        // No current caller schedules behind the queue tail (δ is constant
        // and the clock is monotone), but the bucket queue must stay correct
        // if one ever does.
        let mut q: BucketQueue<Scheduled<&str>> = BucketQueue::new();
        q.push(10, Scheduled { seq: 0, to: Id(1), from: Id(2), msg: "late" });
        q.push(5, Scheduled { seq: 1, to: Id(1), from: Id(2), msg: "early" });
        q.push(5, Scheduled { seq: 2, to: Id(1), from: Id(2), msg: "early2" });
        q.push(7, Scheduled { seq: 3, to: Id(1), from: Id(2), msg: "mid" });
        assert_eq!(q.len(), 4);
        let order: Vec<(SimTime, &str)> =
            std::iter::from_fn(|| q.pop_front().map(|(at, s)| (at, s.msg))).collect();
        assert_eq!(order, vec![(5, "early"), (5, "early2"), (7, "mid"), (10, "late")]);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn drain_in_flight_empties_the_queue_without_advancing_the_clock() {
        let (mut net, ids) = network(10);
        net.send_direct(ids[0], ids[1], "a", CLASS_A);
        net.advance_to(40);
        net.send_direct(ids[0], ids[2], "b", CLASS_A);
        let drained = net.drain_in_flight();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].msg, "a");
        assert_eq!(drained[0].at, 5);
        assert_eq!(drained[1].at, 45);
        assert!(drained[0].seq < drained[1].seq);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.now(), 40, "draining must not move the clock");
    }

    #[test]
    fn charge_route_accounts_without_delivery() {
        let (mut net, ids) = network(30);
        let before = net.traffic().total_sent();
        net.charge_route(ids[0], Id::hash_key("ric-key"), CLASS_B).unwrap();
        assert!(net.traffic().total_sent() > before);
        assert_eq!(net.in_flight(), 0);
        net.charge_direct(ids[0], CLASS_B);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn clock_never_goes_backwards() {
        let (mut net, ids) = network(10);
        net.advance_to(50);
        net.send_direct(ids[0], ids[1], "late", CLASS_A);
        net.advance_to(10); // no-op
        assert_eq!(net.now(), 50);
        let d = net.pop_next().unwrap();
        assert_eq!(d.at, 55);
        assert_eq!(net.now(), 55);
    }
}
