//! Discrete-event network simulation and the messaging API used by RJoin.
//!
//! The paper assumes a relaxed asynchronous system: there is a known upper
//! bound δ on message delay, and messages are delivered through the DHT
//! using three primitives (Section 2):
//!
//! * `send(msg, id)` — deliver `msg` to `Successor(id)` in `O(log N)` hops,
//! * `multiSend(msg, I)` / `multiSend(M, I)` — deliver one or more messages
//!   to the successors of a set of identifiers,
//! * `sendDirect(msg, addr)` — deliver `msg` to a known address in one hop.
//!
//! [`Network`] implements these primitives on top of the Chord simulation of
//! [`rjoin_dht`], accounting **network traffic the way the paper measures
//! it**: every hop of a routed message is one message sent by the node at
//! the start of the hop (so both message creation and DHT routing count),
//! attributed to a caller-chosen [`TrafficClass`] so that e.g. RIC-request
//! traffic can be reported separately from the total.
//!
//! Message payloads are generic: the RJoin engine defines its own message
//! enum and drives the simulation by draining [`Network::pop_next`].

mod network;
mod time;
mod traffic;

pub use network::{Delivery, Network, NetworkConfig};
pub use time::SimTime;
pub use traffic::{TrafficClass, TrafficStats};
