//! Discrete-event network simulation and the messaging API used by RJoin.
//!
//! The paper assumes a relaxed asynchronous system: there is a known upper
//! bound δ on message delay, and messages are delivered through the DHT
//! using three primitives (Section 2):
//!
//! * `send(msg, id)` — deliver `msg` to `Successor(id)` in `O(log N)` hops,
//! * `multiSend(msg, I)` / `multiSend(M, I)` — deliver one or more messages
//!   to the successors of a set of identifiers,
//! * `sendDirect(msg, addr)` — deliver `msg` to a known address in one hop.
//!
//! Two traits capture the messaging surface. [`KeyRouter`] is the *pure
//! routing* half — resolving which node is responsible for a ring
//! identifier, with no clock and no delivery. [`Transport`] (a supertrait
//! of which is `KeyRouter`) adds the *delivery and clock* half: those three
//! primitives plus the cost-only `charge_*` variants used to model
//! synchronous request/response exchanges, accounting **network traffic the
//! way the paper measures it**: every hop of a routed message is one
//! message sent by the node at the start of the hop, attributed to a
//! caller-chosen [`TrafficClass`]. The split exists because a real
//! deployment resolves ownership from a membership view (no event queue in
//! sight) while re-homing state or placing queries — see the [`transport`
//! module](crate::Transport) docs for the per-implementation guarantee
//! table (ordering, clocks). Two simulated runtimes implement the full
//! trait in this crate; the `rjoin_transport` crate adds the real one over
//! TCP:
//!
//! # The single-queue runtime ([`Network`])
//!
//! One global event queue driven by one thread. Because the delay bound δ
//! is a constant and the clock is monotone, arrival times are scheduled in
//! non-decreasing order, so the in-flight queue is a *bucket queue* — one
//! FIFO bucket per delivery tick — with O(1) push and pop. Two drain APIs
//! expose the same total `(at, seq)` order: [`Network::pop_next`] (single
//! stepping) and [`Network::pop_tick`] (a whole tick at once, which lets a
//! driver fan one tick's handlers out across cores).
//!
//! # The sharded runtime ([`ShardedNetwork`])
//!
//! N per-shard bucket queues, each with its own local virtual clock, each
//! driven by a persistent worker thread. Shards own disjoint, contiguous
//! ranges of the ring ([`ShardMap`]); intra-shard messages never leave
//! their shard's queue, cross-shard messages go through a bounded
//! outbox/inbox handoff. Instead of a global tick barrier, shards obey a
//! conservative **watermark protocol** (documented on [`ShardedNetwork`]): a
//! shard processes its next tick `t` only once every peer's published low
//! watermark proves that no message arriving at or before `t` can still be
//! produced. With the uniform link delay δ ≥ 1 this is deadlock-free — the
//! shard holding the minimal watermark can always run, and by running it
//! releases its peers — so independent event cascades on different shards
//! proceed concurrently with no synchronization beyond a few atomic
//! watermark updates per tick.
//!
//! Intra-tick determinism under sharding comes from **lineages**
//! ([`root_lineage`]/[`child_lineage`]): 128-bit causal identities chained
//! from each message's parent, invariant across shard counts and thread
//! interleavings, which replace the single queue's global sequence numbers
//! as the intra-tick order key.
//!
//! Message payloads are generic: the RJoin engine defines its own message
//! enum and drives the simulation by draining the queue(s).

mod network;
mod queue;
mod shard;
mod time;
mod traffic;
mod transport;

pub use network::{Delivery, Network, NetworkConfig};
pub use queue::BucketQueue;
pub use shard::{
    child_lineage, lineage_seed, root_lineage, Lineage, ShardDelivery, ShardHandle, ShardLocal,
    ShardMap, ShardPoll, ShardedNetwork,
};
pub use time::SimTime;
pub use traffic::{account_route, TrafficClass, TrafficStats};
pub use transport::{KeyRouter, Transport};
