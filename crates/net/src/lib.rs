//! Discrete-event network simulation and the messaging API used by RJoin.
//!
//! The paper assumes a relaxed asynchronous system: there is a known upper
//! bound δ on message delay, and messages are delivered through the DHT
//! using three primitives (Section 2):
//!
//! * `send(msg, id)` — deliver `msg` to `Successor(id)` in `O(log N)` hops,
//! * `multiSend(msg, I)` / `multiSend(M, I)` — deliver one or more messages
//!   to the successors of a set of identifiers,
//! * `sendDirect(msg, addr)` — deliver `msg` to a known address in one hop.
//!
//! [`Network`] implements these primitives on top of the Chord simulation of
//! [`rjoin_dht`], accounting **network traffic the way the paper measures
//! it**: every hop of a routed message is one message sent by the node at
//! the start of the hop (so both message creation and DHT routing count),
//! attributed to a caller-chosen [`TrafficClass`] so that e.g. RIC-request
//! traffic can be reported separately from the total.
//!
//! # Event queue
//!
//! Because the delay bound δ is a constant and the clock is monotone,
//! arrival times are scheduled in non-decreasing order. The in-flight queue
//! exploits this: it is a *bucket queue* — one FIFO bucket per delivery
//! tick — with O(1) push and pop instead of a binary heap's O(log n)
//! comparisons per event. Two drain APIs expose the same total `(at, seq)`
//! order:
//!
//! * [`Network::pop_next`] — one delivery at a time (single-stepping), and
//! * [`Network::pop_tick`] — every delivery of the earliest tick at once,
//!   which is what lets the engine process one tick as a batch and fan the
//!   batch out across cores.
//!
//! Message payloads are generic: the RJoin engine defines its own message
//! enum and drives the simulation by draining the queue.

mod network;
mod time;
mod traffic;

pub use network::{Delivery, Network, NetworkConfig};
pub use time::SimTime;
pub use traffic::{TrafficClass, TrafficStats};
