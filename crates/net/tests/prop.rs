//! Property-based tests for the simulated network: delivery ordering,
//! ownership and traffic accounting.

use proptest::prelude::*;
use rjoin_dht::Id;
use rjoin_net::{Network, NetworkConfig, TrafficClass};

const CLASS: TrafficClass = 0;

proptest! {
    /// Every routed message is delivered to the ground-truth owner of its
    /// key, the hop count equals the accounted messages, and deliveries come
    /// out in non-decreasing time order.
    #[test]
    fn routing_and_accounting_are_consistent(
        nodes in 2usize..40,
        delay in 1u64..20,
        keys in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let mut net: Network<usize> = Network::new(NetworkConfig { delay, successor_list_len: 4 });
        let ids = net.bootstrap(nodes, "prop-net");
        let from = ids[0];

        let mut expected_owners = Vec::new();
        let mut total_hops = 0u64;
        for (i, key) in keys.iter().enumerate() {
            let key = Id(*key);
            let owner = net.owner_of(key).unwrap();
            let result = net.send(from, key, i, CLASS).unwrap();
            prop_assert_eq!(result.owner, owner);
            total_hops += result.hops().max(1) as u64;
            expected_owners.push(owner);
        }
        prop_assert_eq!(net.traffic().total_sent(), total_hops);
        prop_assert_eq!(net.in_flight(), keys.len());

        let mut last_time = 0;
        let mut delivered = 0usize;
        while let Some(delivery) = net.pop_next() {
            prop_assert!(delivery.at >= last_time);
            last_time = delivery.at;
            prop_assert_eq!(delivery.to, expected_owners[delivery.msg]);
            prop_assert_eq!(delivery.from, from);
            delivered += 1;
        }
        prop_assert_eq!(delivered, keys.len());
        prop_assert_eq!(net.now(), last_time);
    }

    /// Direct sends cost exactly one message each regardless of the ring
    /// size, and are delivered after exactly the delay bound.
    #[test]
    fn direct_sends_cost_one_message(nodes in 2usize..40, delay in 1u64..50, count in 1usize..30) {
        let mut net: Network<u32> = Network::new(NetworkConfig { delay, successor_list_len: 4 });
        let ids = net.bootstrap(nodes, "prop-direct");
        for i in 0..count {
            net.send_direct(ids[i % ids.len()], ids[(i + 1) % ids.len()], i as u32, CLASS);
        }
        prop_assert_eq!(net.traffic().total_sent(), count as u64);
        let mut seen = 0;
        while let Some(delivery) = net.pop_next() {
            prop_assert_eq!(delivery.at, delay);
            seen += 1;
        }
        prop_assert_eq!(seen, count);
    }
}
