//! Workload scales for the figure generators.

use serde::{Deserialize, Serialize};

/// How large a workload the figure generators use.
///
/// `Full` reproduces the paper's parameters exactly (10^3 nodes, 2·10^4
/// queries); `Reduced` divides the counts by roughly 10 so that every figure
/// regenerates in minutes on a laptop; `Smoke` is tiny and exists for tests
/// of the harness itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scale {
    /// The paper's parameters (large; expect long runtimes).
    Full,
    /// ~10× smaller than the paper; preserves all trends.
    #[default]
    Reduced,
    /// Minimal workload used in tests of the harness.
    Smoke,
}

impl Scale {
    /// Parses a scale name (`full`, `reduced`, `smoke`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name.to_ascii_lowercase().as_str() {
            "full" => Some(Scale::Full),
            "reduced" => Some(Scale::Reduced),
            "smoke" => Some(Scale::Smoke),
            _ => None,
        }
    }

    /// Number of DHT nodes.
    pub fn nodes(&self) -> usize {
        match self {
            Scale::Full => 1000,
            Scale::Reduced => 100,
            Scale::Smoke => 24,
        }
    }

    /// Number of continuous queries (the paper's default is 2·10^4).
    pub fn queries(&self) -> usize {
        match self {
            Scale::Full => 20_000,
            Scale::Reduced => 2_000,
            Scale::Smoke => 100,
        }
    }

    /// Divisor applied to the paper's tuple counts.
    pub fn tuple_divisor(&self) -> usize {
        match self {
            Scale::Full => 1,
            Scale::Reduced => 4,
            Scale::Smoke => 16,
        }
    }

    /// Scales a tuple count from the paper, never dropping below 8.
    pub fn tuples(&self, paper_count: usize) -> usize {
        (paper_count / self.tuple_divisor()).max(8)
    }

    /// Scales a query count from the paper, never dropping below 50.
    pub fn scaled_queries(&self, paper_count: usize) -> usize {
        match self {
            Scale::Full => paper_count,
            Scale::Reduced => (paper_count / 10).max(50),
            Scale::Smoke => (paper_count / 200).max(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("Reduced"), Some(Scale::Reduced));
        assert_eq!(Scale::parse("SMOKE"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn full_scale_matches_paper() {
        assert_eq!(Scale::Full.nodes(), 1000);
        assert_eq!(Scale::Full.queries(), 20_000);
        assert_eq!(Scale::Full.tuples(400), 400);
        assert_eq!(Scale::Full.scaled_queries(32_000), 32_000);
    }

    #[test]
    fn reduced_scale_preserves_floors() {
        assert_eq!(Scale::Reduced.tuples(40), 10);
        assert_eq!(Scale::Smoke.tuples(40), 8);
        assert!(Scale::Smoke.scaled_queries(2_000) >= 50);
    }
}
