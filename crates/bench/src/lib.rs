//! Benchmark harness for the RJoin reproduction.
//!
//! Every figure of the paper's experimental section (Section 8) has a
//! corresponding generator here that runs the simulation and produces the
//! same rows/series the paper plots:
//!
//! | Figure | Generator | What it shows |
//! |--------|-----------|---------------|
//! | 2(a–c) | [`figures::fig2`] | Worst vs Random vs RJoin: traffic, QPL, SL per node |
//! | 3(a–c) | [`figures::fig3`] | Effect of the number of incoming tuples |
//! | 4(a–c) | [`figures::fig4`] | Effect of the number of indexed queries |
//! | 5(a–c) | [`figures::fig5`] | Effect of the Zipf skew θ |
//! | 6(a–c) | [`figures::fig6`] | Effect of query complexity (4/6/8-way joins) |
//! | 7(a–c) | [`figures::fig7_fig8`] | Effect of the sliding-window size |
//! | 8(a–b) | [`figures::fig7_fig8`] | Cumulative QPL/SL per window size |
//! | 9(a–b) | [`figures::fig9`] | Identifier-movement load balancing |
//! | 9-ext | [`figures::fig9_split`] | Hot-key splitting + identifier movement |
//!
//! The `figures` binary (`cargo run -p rjoin-bench --release --bin figures`)
//! prints the tables; Criterion micro-benchmarks live under `benches/`.
//!
//! Absolute numbers depend on the machine and on the [`Scale`] used (the
//! paper's full workload is large; the default `Reduced` scale divides the
//! node/query/tuple counts by roughly 10 while preserving every trend).

pub mod figures;
pub mod report;
pub mod runner;
pub mod scale;

pub use report::{compare_reports, BenchReport, BenchResult, CaseDelta};
pub use runner::{run_experiment, RunResult};
pub use scale::Scale;
