//! The machine-readable benchmark report format (`BENCH_*.json`).
//!
//! The `bench_json` binary emits one [`BenchReport`] per run; CI uploads it
//! and the `bench_compare` binary diffs a fresh report against the
//! previously committed one, warning when a case regresses beyond a
//! threshold. Keeping the shape here (with both `Serialize` and
//! `Deserialize`) is what lets reports round-trip across PRs.

use serde::{Deserialize, Serialize};

/// One benchmark's timing result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Benchmark group (e.g. `placement_strategy`).
    pub group: String,
    /// Case name within the group (e.g. `ric_aware`).
    pub bench: String,
    /// Mean wall-clock milliseconds per iteration.
    pub ms_per_iter: f64,
    /// Fastest single iteration (robust to scheduling noise).
    pub ms_best: f64,
    /// Number of timed iterations.
    pub iters: u64,
}

impl BenchResult {
    /// `group/bench`, the stable identity used when diffing reports.
    pub fn case_id(&self) -> String {
        format!("{}/{}", self.group, self.bench)
    }
}

/// The emitted file: scenario parameters plus every result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Format version of this report.
    pub schema_version: u32,
    /// Nodes in the benchmark scenario.
    pub nodes: usize,
    /// Queries submitted per iteration.
    pub queries: usize,
    /// Tuples published per iteration.
    pub tuples: usize,
    /// All measured cases.
    pub results: Vec<BenchResult>,
}

/// One row of a report comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDelta {
    /// `group/bench`.
    pub case_id: String,
    /// Baseline ms/iter.
    pub old_ms: f64,
    /// Fresh ms/iter.
    pub new_ms: f64,
    /// Relative change in percent (`+` = slower = regression).
    pub pct: f64,
}

impl CaseDelta {
    /// Whether this case regressed by more than `threshold_pct` percent.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.pct > threshold_pct
    }
}

/// Diffs two reports on their common cases (matched by `group/bench`),
/// preserving the baseline's order. Cases present in only one report are
/// skipped: a renamed or newly added benchmark is not a regression.
pub fn compare_reports(baseline: &BenchReport, fresh: &BenchReport) -> Vec<CaseDelta> {
    let mut deltas = Vec::new();
    for old in &baseline.results {
        let id = old.case_id();
        let Some(new) = fresh.results.iter().find(|r| r.case_id() == id) else {
            continue;
        };
        if old.ms_per_iter <= 0.0 {
            continue;
        }
        let pct = (new.ms_per_iter - old.ms_per_iter) / old.ms_per_iter * 100.0;
        deltas.push(CaseDelta {
            case_id: id,
            old_ms: old.ms_per_iter,
            new_ms: new.ms_per_iter,
            pct,
        });
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cases: &[(&str, &str, f64)]) -> BenchReport {
        BenchReport {
            schema_version: 2,
            nodes: 48,
            queries: 300,
            tuples: 60,
            results: cases
                .iter()
                .map(|(g, b, ms)| BenchResult {
                    group: g.to_string(),
                    bench: b.to_string(),
                    ms_per_iter: *ms,
                    ms_best: *ms,
                    iters: 3,
                })
                .collect(),
        }
    }

    #[test]
    fn serde_round_trip() {
        let r = report(&[("g", "a", 1.5), ("g", "b", 2.0)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: BenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.results.len(), 2);
        assert_eq!(back.results[0].case_id(), "g/a");
        assert!((back.results[1].ms_per_iter - 2.0).abs() < 1e-12);
    }

    #[test]
    fn compare_matches_cases_and_flags_regressions() {
        let old = report(&[("g", "a", 10.0), ("g", "b", 10.0), ("g", "gone", 1.0)]);
        let new = report(&[("g", "a", 11.0), ("g", "b", 12.0), ("g", "added", 1.0)]);
        let deltas = compare_reports(&old, &new);
        assert_eq!(deltas.len(), 2, "only common cases are compared");
        assert!((deltas[0].pct - 10.0).abs() < 1e-9);
        assert!(!deltas[0].regressed(15.0));
        assert!((deltas[1].pct - 20.0).abs() < 1e-9);
        assert!(deltas[1].regressed(15.0));
    }

    #[test]
    fn improvements_are_never_regressions() {
        let old = report(&[("g", "a", 10.0)]);
        let new = report(&[("g", "a", 5.0)]);
        let deltas = compare_reports(&old, &new);
        assert!((deltas[0].pct + 50.0).abs() < 1e-9);
        assert!(!deltas[0].regressed(15.0));
    }
}
