//! The experiment runner: builds an engine from a scenario, drives it and
//! captures the metrics the figures need.

use rjoin_core::{EngineConfig, ExperimentStats, RJoinEngine};
use rjoin_dht::Id;
use rjoin_workload::Scenario;
use std::collections::BTreeMap;

/// Everything a figure generator needs from one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final statistics after all tuples were processed.
    pub stats: ExperimentStats,
    /// Statistics snapshots taken after the requested numbers of tuples
    /// (`checkpoints` argument of [`run_experiment`]), in the same order.
    pub checkpoints: Vec<(usize, ExperimentStats)>,
    /// Query-processing load added by each published tuple (index = tuple
    /// order), used for cumulative plots.
    pub per_tuple_qpl: Vec<u64>,
    /// Storage load added by each published tuple.
    pub per_tuple_sl: Vec<u64>,
    /// Query-processing load per index key (keyed by the ring identifier the
    /// key hashes to), for load-balancing analysis.
    pub qpl_by_key: BTreeMap<Id, u64>,
    /// Storage load per index key.
    pub sl_by_key: BTreeMap<Id, u64>,
    /// Number of nodes in the network.
    pub nodes: usize,
    /// Number of tuples published.
    pub tuples: usize,
    /// Number of answers delivered.
    pub answers: u64,
}

/// Runs one experiment: bootstraps the network, submits every query of the
/// scenario (round-robin over the nodes), publishes every tuple one by one
/// (running the network to quiescence after each so per-tuple load deltas
/// are exact), and records statistics snapshots after the tuple counts
/// listed in `checkpoints`.
pub fn run_experiment(
    scenario: &Scenario,
    engine_config: EngineConfig,
    checkpoints: &[usize],
) -> RunResult {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(engine_config, catalog, scenario.nodes);
    let origins: Vec<Id> = engine.node_ids().to_vec();

    let queries = scenario.generate_queries();
    for (i, q) in queries.iter().enumerate() {
        let origin = origins[i % origins.len()];
        engine
            .submit_query(origin, q.clone())
            .expect("generated queries validate against the generated catalog");
    }
    engine.run_until_quiescent().expect("query indexing cannot fail on a stable ring");

    let tuples = scenario.generate_tuples(engine.now() + 1);
    let mut per_tuple_qpl = Vec::with_capacity(tuples.len());
    let mut per_tuple_sl = Vec::with_capacity(tuples.len());
    let mut snapshots = Vec::with_capacity(checkpoints.len());
    let mut prev_qpl = engine.total_qpl();
    let mut prev_sl = engine.total_sl();

    for (i, t) in tuples.iter().enumerate() {
        let origin = origins[i % origins.len()];
        engine.publish_tuple(origin, t.clone()).expect("generated tuples are valid");
        engine.run_until_quiescent().expect("tuple processing cannot fail on a stable ring");
        let qpl = engine.total_qpl();
        let sl = engine.total_sl();
        per_tuple_qpl.push(qpl - prev_qpl);
        per_tuple_sl.push(sl - prev_sl);
        prev_qpl = qpl;
        prev_sl = sl;
        if checkpoints.contains(&(i + 1)) {
            snapshots.push((i + 1, engine.stats()));
        }
    }

    RunResult {
        stats: engine.stats(),
        checkpoints: snapshots,
        per_tuple_qpl,
        per_tuple_sl,
        qpl_by_key: engine.qpl_by_key_id(),
        sl_by_key: engine.sl_by_key_id(),
        nodes: scenario.nodes,
        tuples: tuples.len(),
        answers: engine.answers().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjoin_core::PlacementStrategy;

    fn smoke_scenario() -> Scenario {
        Scenario { nodes: 24, queries: 80, tuples: 40, ..Scenario::small_test() }
    }

    #[test]
    fn runner_produces_consistent_metrics() {
        let result = run_experiment(&smoke_scenario(), EngineConfig::default(), &[20, 40]);
        assert_eq!(result.tuples, 40);
        assert_eq!(result.per_tuple_qpl.len(), 40);
        assert_eq!(result.per_tuple_sl.len(), 40);
        assert_eq!(result.checkpoints.len(), 2);
        // Checkpoint totals are monotone and end at the final totals.
        let (_, mid) = &result.checkpoints[0];
        let (_, last) = &result.checkpoints[1];
        assert!(mid.qpl_total <= last.qpl_total);
        assert_eq!(last.qpl_total, result.stats.qpl_total);
        // Per-tuple deltas sum to the final totals.
        assert_eq!(result.per_tuple_qpl.iter().sum::<u64>(), result.stats.qpl_total);
        assert_eq!(result.per_tuple_sl.iter().sum::<u64>(), result.stats.sl_total);
        // Key-level loads sum to node-level loads.
        assert_eq!(result.qpl_by_key.values().sum::<u64>(), result.stats.qpl_total);
        assert_eq!(result.sl_by_key.values().sum::<u64>(), result.stats.sl_total);
        assert!(result.stats.traffic_total > 0);
    }

    #[test]
    fn ric_aware_produces_less_traffic_than_worst() {
        let scenario = smoke_scenario();
        let rjoin = run_experiment(&scenario, EngineConfig::default(), &[]);
        let worst =
            run_experiment(&scenario, EngineConfig::with_placement(PlacementStrategy::Worst), &[]);
        assert!(
            rjoin.stats.qpl_total < worst.stats.qpl_total,
            "RIC-aware placement should process fewer rewritten queries ({} vs {})",
            rjoin.stats.qpl_total,
            worst.stats.qpl_total
        );
    }
}
