//! Regenerates the paper's figures as text tables.
//!
//! ```text
//! cargo run --release -p rjoin-bench --bin figures -- [figure] [scale] [--csv] [--json]
//!
//!   figure : fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | ablation | sharing | all
//!            (default: all; `sharing` runs every figure scenario in both
//!            share_subjoins modes and reports the deltas)
//!   scale  : full | reduced | smoke                                        (default: reduced)
//! ```

use rjoin_bench::figures::run_figure;
use rjoin_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure = "all".to_string();
    let mut scale = Scale::Reduced;
    let mut emit_csv = false;
    let mut emit_json = false;

    for arg in &args {
        match arg.as_str() {
            "--csv" => emit_csv = true,
            "--json" => emit_json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablation|sharing|all] \
                     [full|reduced|smoke] [--csv] [--json]"
                );
                return;
            }
            other => {
                if let Some(s) = Scale::parse(other) {
                    scale = s;
                } else {
                    figure = other.to_string();
                }
            }
        }
    }

    let started = Instant::now();
    let Some(tables) = run_figure(&figure, scale) else {
        eprintln!("unknown figure `{figure}`; expected fig2..fig9 or all");
        std::process::exit(1);
    };

    println!("# RJoin figure regeneration");
    println!("# figure = {figure}, scale = {scale:?}");
    println!();
    for table in &tables {
        println!("{}", table.to_text());
        if emit_csv {
            println!("--- csv ---");
            println!("{}", table.to_csv());
        }
        if emit_json {
            println!("--- json ---");
            println!("{}", table.to_json());
        }
    }
    println!("# generated {} table(s) in {:.1}s", tables.len(), started.elapsed().as_secs_f64());
}
