//! Bench-regression gate: diffs a fresh `BENCH_*.json` report against a
//! committed baseline and **warns** (never fails) when a case regressed by
//! more than a threshold.
//!
//! Usage:
//! `cargo run -p rjoin-bench --bin bench_compare -- [BASELINE.json] FRESH.json [threshold_pct]`
//!
//! * With a single report argument, the baseline is **auto-discovered**:
//!   the highest-numbered committed `BENCH_<n>.json` in the current
//!   directory (so the CI gate keeps working every time a new baseline
//!   lands, without editing the workflow).
//! * Prints a per-case table (`old ms/iter`, `new ms/iter`, `Δ%`).
//! * Cases slower than `threshold_pct` (default 15) are flagged with
//!   `::warning::` annotations, and a Markdown summary is appended to
//!   `$GITHUB_STEP_SUMMARY` when that variable is set (the CI job summary).
//! * Exit code is always 0 when reports compare: quick-mode numbers on
//!   shared runners are trajectory signals, not a merge gate.

use rjoin_bench::{compare_reports, BenchReport};

const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read bench report {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse bench report {path}: {e}"))
}

/// The highest-numbered `BENCH_<n>.json` in the current directory — the
/// most recent committed baseline.
fn discover_baseline() -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(".").ok()? {
        // Skip unreadable entries rather than aborting the discovery.
        let Ok(entry) = entry else { continue };
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(number) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| number > *b) {
            best = Some((number, name));
        }
    }
    best.map(|(_, name)| name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Trailing numeric argument = threshold; what remains is either
    // `FRESH` (baseline auto-discovered) or `BASELINE FRESH`.
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    for (i, arg) in args.iter().enumerate() {
        if i == args.len() - 1 && args.len() > 1 {
            if let Ok(t) = arg.parse::<f64>() {
                threshold = t;
                continue;
            }
        }
        paths.push(arg);
    }
    let (baseline_path, fresh_path) = match paths.as_slice() {
        [fresh] => {
            let Some(baseline) = discover_baseline() else {
                eprintln!("no committed BENCH_<n>.json baseline found in the current directory");
                std::process::exit(2);
            };
            println!("auto-discovered baseline: {baseline}");
            (baseline, (*fresh).clone())
        }
        [baseline, fresh] => ((*baseline).clone(), (*fresh).clone()),
        _ => {
            eprintln!("usage: bench_compare [BASELINE.json] FRESH.json [threshold_pct]");
            std::process::exit(2);
        }
    };

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let deltas = compare_reports(&baseline, &fresh);
    if deltas.is_empty() {
        println!("no common benchmark cases between {baseline_path} and {fresh_path}");
        return;
    }

    println!("{:<32} {:>12} {:>12} {:>9}", "case", "old ms/iter", "new ms/iter", "delta");
    let mut regressions = Vec::new();
    for d in &deltas {
        let flag = if d.regressed(threshold) { "  <-- REGRESSION" } else { "" };
        println!("{:<32} {:>12.3} {:>12.3} {:>8.1}%{flag}", d.case_id, d.old_ms, d.new_ms, d.pct);
        if d.regressed(threshold) {
            // GitHub Actions warning annotation: visible in the run UI
            // without failing the job.
            println!(
                "::warning title=bench regression::{} slowed {:.1}% ({:.3} -> {:.3} ms/iter)",
                d.case_id, d.pct, d.old_ms, d.new_ms
            );
            regressions.push(d);
        }
    }

    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let mut md = String::from("## Bench comparison\n\n");
        md.push_str(&format!(
            "Baseline `{baseline_path}` vs fresh `{fresh_path}` (warn threshold {threshold:.0}%)\n\n"
        ));
        md.push_str("| case | old ms/iter | new ms/iter | Δ |\n|---|---:|---:|---:|\n");
        for d in &deltas {
            let marker = if d.regressed(threshold) { " ⚠️" } else { "" };
            md.push_str(&format!(
                "| {} | {:.3} | {:.3} | {:+.1}%{marker} |\n",
                d.case_id, d.old_ms, d.new_ms, d.pct
            ));
        }
        if regressions.is_empty() {
            md.push_str("\nNo case regressed beyond the threshold.\n");
        } else {
            md.push_str(&format!(
                "\n**{} case(s) regressed by more than {threshold:.0}%.** Quick-mode numbers \
                 are noisy; re-run locally with `BENCH_JSON_ITERS=7` before acting on this.\n",
                regressions.len()
            ));
        }
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).create(true).open(&summary_path)
        {
            let _ = f.write_all(md.as_bytes());
        }
    }

    if regressions.is_empty() {
        println!("OK: no case regressed by more than {threshold:.1}%");
    } else {
        println!("WARNING: {} case(s) regressed by more than {threshold:.1}%", regressions.len());
    }
}
