//! Machine-readable benchmark emitter: runs the criterion engine scenarios
//! in quick mode and writes per-benchmark ms/iter results as JSON, so CI can
//! track the performance trajectory across PRs.
//!
//! Usage: `cargo run --release -p rjoin-bench --bin bench_json -- [OUT.json]`
//! (default output path `BENCH_9.json`). Environment variables:
//!
//! * `BENCH_JSON_ITERS` — per-benchmark iteration count (default 5; CI uses
//!   a small count — the point is trajectory, not statistics);
//! * `BENCH_JSON_GROUPS` — comma-separated group filter (e.g.
//!   `sharding_runtime`), so special-purpose CI legs (the multicore runner)
//!   can re-record just the groups they exist for;
//! * `RJOIN_WORKERS` — worker-thread count of the sharded drains (read by
//!   the engine), decoupling worker count from shard count on multicore
//!   runners.

use rjoin_bench::{BenchReport, BenchResult};
use rjoin_core::{EngineConfig, PlacementStrategy, RJoinEngine};
use rjoin_workload::Scenario;
use std::time::Instant;

fn bench_scenario() -> Scenario {
    // Must stay in lockstep with `benches/engine.rs` so the JSON numbers are
    // comparable with the interactive criterion runs.
    Scenario { nodes: 48, queries: 300, tuples: 60, ..Scenario::small_test() }
}

/// Number of distinct sub-join patterns in the overlapping (multi-query)
/// scenario: 300 queries / 20 patterns = 15 queries per shared sub-join.
const OVERLAP_PATTERNS: usize = 20;

fn drive(
    engine: &mut RJoinEngine,
    queries: Vec<rjoin_query::JoinQuery>,
    scenario: &Scenario,
) -> u64 {
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in queries.into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    engine.total_qpl()
}

fn run(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    drive(&mut engine, scenario.generate_queries(), scenario)
}

/// Same standard workload, drained through `run_until_quiescent_parallel`
/// (the sharded event-queue runtime when `config.shards > 1`).
fn run_parallel(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();
    engine.total_qpl()
}

/// The overlapping multi-query workload: same engine driving, but the
/// queries share [`OVERLAP_PATTERNS`] sub-join structures.
fn run_overlap(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    drive(&mut engine, scenario.generate_overlapping_queries(OVERLAP_PATTERNS), scenario)
}

/// A reduced cut of [`Scenario::scale_test`] sized for bench iteration:
/// the same long-horizon shape (sliding windows, publication times spanning
/// ~125 window-lengths), small enough to iterate in seconds. The full-size
/// scenario is exercised by the `scale_smoke` example and the CI smoke step.
fn scale_scenario() -> Scenario {
    Scenario { nodes: 256, queries: 2_000, tuples: 8_000, ..Scenario::scale_test() }
}

/// Engine configuration of the `scale` group: sharing and the ALTT are on,
/// so all three state families (stored queries, value tuples, ALTT buckets)
/// carry load and expiry pressure.
fn scale_config() -> EngineConfig {
    EngineConfig::default().with_subjoin_sharing(true).with_altt(256)
}

/// Queries per shared sub-join pattern in the scale workload. The scale
/// regime is a *multi-query* population (Dossinger/Michel): thousands of
/// standing queries over a few hundred distinct structures. Without the
/// overlap every tuple would trigger every standing query at its ring —
/// O(tuples × queries) rewrites, which no storage layout can absorb.
const SCALE_OVERLAP: usize = 50;

fn run_scale(config: EngineConfig) -> u64 {
    let scenario = scale_scenario();
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let queries = scenario.generate_overlapping_queries(scenario.queries / SCALE_OVERLAP);
    drive(&mut engine, queries, &scenario)
}

/// Heavy-hitter threshold / partition count of the `skew` group's split
/// leg (the values the split-vs-unsplit oracle suite uses).
const SKEW_THRESHOLD: u64 = 12;
const SKEW_PARTITIONS: u32 = 16;

/// The skewed hot-key workload, driven the continuous way (drain after
/// every publication, so heat detection sees quiescent points). The
/// `unsplit`/`split` delta is the cost/benefit of hot-key splitting on a
/// point-mass workload.
fn run_skew(config: EngineConfig) -> u64 {
    let scenario = Scenario::skew_test(0.9);
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
        engine.run_until_quiescent().unwrap();
    }
    engine.total_qpl()
}

/// The cyclic-shape workload pair of the two-plan planner. Both legs share
/// the dense 4-relation schema and counts of [`Scenario::cyclic_test`]; the
/// `pipeline` leg turns the cycle knob off (3-conjunct chain queries → the
/// rewrite pipeline), the `hypercube` leg keeps it on (every query takes
/// the hypercube plan). The delta is the price of cyclic shapes: replicated
/// cell placement plus tuple-copy fan-out instead of one rewrite chain.
fn cyclic_scenario(cycle: usize) -> Scenario {
    Scenario { cycle, queries: 60, tuples: 120, ..Scenario::cyclic_test() }
}

fn measure(group: &str, bench: &str, iters: u64, mut f: impl FnMut() -> u64) -> BenchResult {
    // One untimed warm-up iteration.
    std::hint::black_box(f());
    let mut best = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
    }
    let result = BenchResult {
        group: group.to_string(),
        bench: bench.to_string(),
        ms_per_iter: total / iters as f64,
        ms_best: best,
        iters,
    };
    println!(
        "{}/{}: {:.3} ms/iter (best {:.3} ms, {} iters)",
        result.group, result.bench, result.ms_per_iter, result.ms_best, result.iters
    );
    result
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_9.json".to_string());
    let iters: u64 =
        std::env::var("BENCH_JSON_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    // Optional group filter: `BENCH_JSON_GROUPS=sharding_runtime,skew`.
    let groups: Option<Vec<String>> = std::env::var("BENCH_JSON_GROUPS")
        .ok()
        .map(|v| v.split(',').map(|g| g.trim().to_string()).filter(|g| !g.is_empty()).collect());
    let want = |group: &str| groups.as_ref().is_none_or(|gs| gs.iter().any(|g| g == group));
    let scenario = bench_scenario();

    let mut results = Vec::new();
    if want("placement_strategy") {
        for (name, strategy) in [
            ("ric_aware", PlacementStrategy::RicAware),
            ("random", PlacementStrategy::Random),
            ("worst", PlacementStrategy::Worst),
            ("first_in_clause", PlacementStrategy::FirstInClause),
        ] {
            results.push(measure("placement_strategy", name, iters, || {
                run(EngineConfig::with_placement(strategy), &scenario)
            }));
        }
    }
    if want("ric_reuse") {
        results.push(measure("ric_reuse", "with_reuse", iters, || {
            run(EngineConfig::default(), &scenario)
        }));
        results.push(measure("ric_reuse", "without_reuse", iters, || {
            run(EngineConfig::default().with_ric_reuse(false), &scenario)
        }));
    }
    if want("window_size") {
        for window in [10u64, 40] {
            let mut windowed = bench_scenario();
            windowed.window = rjoin_query::WindowSpec::sliding_tuples(window);
            results.push(measure("window_size", &format!("W{window}"), iters, || {
                run(EngineConfig::default(), &windowed)
            }));
        }
    }
    // Multi-query optimization: the same overlapping workload with and
    // without the shared sub-join registry. The delta is the sharing win.
    if want("sharing") {
        results.push(measure("sharing", "unshared", iters, || {
            run_overlap(EngineConfig::default(), &scenario)
        }));
        results.push(measure("sharing", "shared", iters, || {
            run_overlap(EngineConfig::default().with_subjoin_sharing(true), &scenario)
        }));
    }
    // Sharded event-queue runtime on the cascade-heavy standard workload:
    // single global queue vs per-shard clocks with conservative cross-shard
    // synchronization (threaded on multicore hosts, cooperative on one
    // core). Compare against placement_strategy/ric_aware — the PR 3
    // sequential baseline on the same workload.
    if want("sharding_runtime") {
        results.push(measure("sharding_runtime", "single_queue", iters, || {
            run_parallel(EngineConfig::default(), &scenario)
        }));
        for shards in [2usize, 4, 8] {
            results.push(measure("sharding_runtime", &format!("shards{shards}"), iters, || {
                run_parallel(EngineConfig::default().with_shards(shards), &scenario)
            }));
        }
    }
    // Compiled predicate programs on the overlapping workload (where the
    // fingerprint cache sees the most reuse): the `interpreted` leg walks
    // the rewrite AST per (tuple, stored query) pair, the `compiled` leg
    // runs the flat programs. The delta is the tentpole win of PR 6.
    if want("compiled") {
        results.push(measure("compiled", "interpreted", iters, || {
            run_overlap(EngineConfig::default().with_compiled_predicates(false), &scenario)
        }));
        results.push(measure("compiled", "compiled", iters, || {
            run_overlap(EngineConfig::default(), &scenario)
        }));
    }
    // The long-horizon scale workload: sliding windows over a publication
    // horizon of ~125 window-lengths, sharing and ALTT on. `engine` is the
    // default (timer-wheel) expiry path; `sweep` is the contact-sweep
    // oracle — answer-identical, but reclaiming only on contact, so its
    // stored state grows with the horizon while the wheel's stays O(active).
    if want("scale") {
        results.push(measure("scale", "engine", iters, || run_scale(scale_config())));
        results.push(measure("scale", "sweep", iters, || {
            run_scale(scale_config().with_wheel_expiry(false))
        }));
    }
    // Value-partitioned trigger index on the scale workload: the `linear`
    // leg walks every stored query under the contacted attribute-level key
    // per tuple and every stored tuple per arriving query (the differential
    // oracle), the `indexed` leg probes only pin-matching stored queries
    // plus the admissible publication span of stored tuples. Both legs
    // produce identical answer streams (oracle-checked in the
    // trigger_index suite); the delta is the tentpole win of PR 9.
    if want("probe") {
        results.push(measure("probe", "linear", iters, || {
            run_scale(scale_config().with_trigger_index(false))
        }));
        results.push(measure("probe", "indexed", iters, || run_scale(scale_config())));
    }
    // Hot-key splitting on the point-mass skew workload: the `split` leg
    // pays tuple routing, query fan-out and activation migration; the
    // answer stream is identical (oracle-checked in the split suite).
    if want("skew") {
        results.push(measure("skew", "unsplit", iters, || {
            run_skew(EngineConfig::default().with_altt(8_000))
        }));
        results.push(measure("skew", "split", iters, || {
            run_skew(
                EngineConfig::default()
                    .with_altt(8_000)
                    .with_hot_key_splitting(SKEW_THRESHOLD, SKEW_PARTITIONS),
            )
        }));
    }

    // Cyclic query shapes under the two-plan planner: the `pipeline` leg is
    // the matched acyclic chain workload (cycle knob off, same schema and
    // counts) evaluated by the rewrite pipeline; the `hypercube` leg is the
    // triangle workload evaluated as replicated cells with cell-local
    // partials. The cost model routes each leg to its plan automatically.
    if want("cyclic") {
        results.push(measure("cyclic", "pipeline", iters, || {
            run(EngineConfig::default(), &cyclic_scenario(0))
        }));
        results.push(measure("cyclic", "hypercube", iters, || {
            run(EngineConfig::default(), &cyclic_scenario(3))
        }));
    }

    let report = BenchReport {
        // v8 adds the `probe` group (linear-walk oracle vs value-partitioned
        // trigger index + span-bounded eval walk on the scale workload).
        schema_version: 8,
        nodes: scenario.nodes,
        queries: scenario.queries,
        tuples: scenario.tuples,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json).expect("writing the report file succeeds");
    println!("wrote {out_path}");
}
