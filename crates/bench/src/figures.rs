//! Generators for every figure of the paper's evaluation (Section 8).

use crate::runner::{run_experiment, RunResult};
use crate::Scale;
use rjoin_core::{EngineConfig, PlacementStrategy};
use rjoin_dht::{balance, ChordNetwork, Id};
use rjoin_metrics::{CumulativeSeries, Distribution, Table};
use rjoin_net::{Network, NetworkConfig};
use rjoin_query::WindowSpec;
use rjoin_workload::Scenario;
use std::collections::BTreeMap;

/// Number of ranked-node sample points printed for distribution panels.
const CURVE_POINTS: usize = 12;

fn base_scenario(scale: Scale) -> Scenario {
    Scenario {
        nodes: scale.nodes(),
        queries: scale.queries(),
        tuples: 0, // set per figure
        ..Scenario::paper_default()
    }
}

fn fmt_f(v: f64) -> String {
    format!("{v:.3}")
}

fn per_node(total: u64, nodes: usize) -> f64 {
    if nodes == 0 {
        0.0
    } else {
        total as f64 / nodes as f64
    }
}

fn per_node_per_tuple(total: u64, nodes: usize, tuples: usize) -> f64 {
    if nodes == 0 || tuples == 0 {
        0.0
    } else {
        total as f64 / nodes as f64 / tuples as f64
    }
}

/// Builds a ranked-node distribution table: one row per sampled rank, one
/// column per series.
fn distribution_table(title: &str, series: &[(String, &Distribution)]) -> Table {
    let mut headers = vec!["ranked_node".to_string()];
    headers.extend(series.iter().map(|(label, _)| label.clone()));
    let mut table = Table::new(title, headers);
    let len = series.iter().map(|(_, d)| d.len()).max().unwrap_or(0);
    if len == 0 {
        return table;
    }
    let mut ranks: Vec<usize> = (0..CURVE_POINTS).map(|i| i * len / CURVE_POINTS).collect();
    ranks.push(len - 1);
    ranks.dedup();
    for rank in ranks {
        let mut row = vec![rank.to_string()];
        row.extend(series.iter().map(|(_, d)| d.at_rank(rank).to_string()));
        table.push_row(row);
    }
    table
}

/// Figure 2: effect of taking RIC information into account. Three panels
/// (traffic, query-processing load, storage load per node) comparing the
/// Worst, Random and RJoin (RIC-aware) strategies as tuples arrive.
pub fn fig2(scale: Scale) -> Vec<Table> {
    let mut tuple_points: Vec<usize> =
        [50, 100, 200, 400].iter().map(|t| scale.tuples(*t)).collect();
    tuple_points.dedup();
    let max_tuples = *tuple_points.last().expect("non-empty sweep");

    let mut scenario = base_scenario(scale);
    scenario.tuples = max_tuples;

    let strategies = [
        ("worst", PlacementStrategy::Worst),
        ("random", PlacementStrategy::Random),
        ("rjoin", PlacementStrategy::RicAware),
    ];
    let results: Vec<(&str, RunResult)> = strategies
        .iter()
        .map(|(name, strategy)| {
            let config = EngineConfig::with_placement(*strategy);
            (*name, run_experiment(&scenario, config, &tuple_points))
        })
        .collect();

    let mut traffic = Table::new(
        "Figure 2(a): total messages per node",
        ["tuples", "worst", "random", "rjoin", "rjoin_request_ric"],
    );
    let mut qpl = Table::new(
        "Figure 2(b): query processing load per node",
        ["tuples", "worst", "random", "rjoin"],
    );
    let mut sl =
        Table::new("Figure 2(c): storage load per node", ["tuples", "worst", "random", "rjoin"]);

    for (i, point) in tuple_points.iter().enumerate() {
        let at = |name: &str| -> &rjoin_core::ExperimentStats {
            &results.iter().find(|(n, _)| *n == name).expect("strategy ran").1.checkpoints[i].1
        };
        traffic.push_row([
            point.to_string(),
            fmt_f(per_node(at("worst").traffic_total, scenario.nodes)),
            fmt_f(per_node(at("random").traffic_total, scenario.nodes)),
            fmt_f(per_node(at("rjoin").traffic_total, scenario.nodes)),
            fmt_f(per_node(at("rjoin").traffic_ric, scenario.nodes)),
        ]);
        qpl.push_row([
            point.to_string(),
            fmt_f(per_node(at("worst").qpl_total, scenario.nodes)),
            fmt_f(per_node(at("random").qpl_total, scenario.nodes)),
            fmt_f(per_node(at("rjoin").qpl_total, scenario.nodes)),
        ]);
        sl.push_row([
            point.to_string(),
            fmt_f(per_node(at("worst").sl_total, scenario.nodes)),
            fmt_f(per_node(at("random").sl_total, scenario.nodes)),
            fmt_f(per_node(at("rjoin").sl_total, scenario.nodes)),
        ]);
    }
    vec![traffic, qpl, sl]
}

/// Figure 3: effect of increasing the number of incoming tuples (one
/// RIC-aware run, statistics sampled at increasing tuple counts).
pub fn fig3(scale: Scale) -> Vec<Table> {
    let tuple_points: Vec<usize> =
        [40, 80, 160, 320, 640, 1280, 2560].iter().map(|t| scale.tuples(*t)).collect();
    let mut tuple_points = tuple_points;
    tuple_points.dedup();
    let max_tuples = *tuple_points.last().expect("non-empty sweep");

    let mut scenario = base_scenario(scale);
    scenario.tuples = max_tuples;
    let result = run_experiment(&scenario, EngineConfig::default(), &tuple_points);

    let mut traffic = Table::new(
        "Figure 3(a): messages per node per tuple",
        ["tuples", "total_hops", "request_ric"],
    );
    for (count, stats) in &result.checkpoints {
        traffic.push_row([
            count.to_string(),
            fmt_f(per_node_per_tuple(stats.traffic_total, scenario.nodes, *count)),
            fmt_f(per_node_per_tuple(stats.traffic_ric, scenario.nodes, *count)),
        ]);
    }

    let qpl_series: Vec<(String, &Distribution)> = result
        .checkpoints
        .iter()
        .map(|(count, stats)| (format!("{count}_tuples"), &stats.qpl))
        .collect();
    let sl_series: Vec<(String, &Distribution)> = result
        .checkpoints
        .iter()
        .map(|(count, stats)| (format!("{count}_tuples"), &stats.sl))
        .collect();

    vec![
        traffic,
        distribution_table("Figure 3(b): query processing load distribution", &qpl_series),
        distribution_table("Figure 3(c): storage load distribution", &sl_series),
    ]
}

/// Figure 4: effect of increasing the number of indexed queries.
pub fn fig4(scale: Scale) -> Vec<Table> {
    let query_points: Vec<usize> =
        [2_000, 4_000, 8_000, 16_000, 32_000].iter().map(|q| scale.scaled_queries(*q)).collect();
    let tuples = scale.tuples(1000);

    let results: Vec<(usize, RunResult)> = query_points
        .iter()
        .map(|&q| {
            let mut scenario = base_scenario(scale);
            scenario.queries = q;
            scenario.tuples = tuples;
            (q, run_experiment(&scenario, EngineConfig::default(), &[]))
        })
        .collect();

    let mut traffic = Table::new(
        "Figure 4(a): messages per node per tuple",
        ["queries", "total_hops", "request_ric"],
    );
    for (q, r) in &results {
        traffic.push_row([
            q.to_string(),
            fmt_f(per_node_per_tuple(r.stats.traffic_total, r.nodes, r.tuples)),
            fmt_f(per_node_per_tuple(r.stats.traffic_ric, r.nodes, r.tuples)),
        ]);
    }
    let qpl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(q, r)| (format!("{q}_queries"), &r.stats.qpl)).collect();
    let sl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(q, r)| (format!("{q}_queries"), &r.stats.sl)).collect();

    vec![
        traffic,
        distribution_table("Figure 4(b): query processing load distribution", &qpl_series),
        distribution_table("Figure 4(c): storage load distribution", &sl_series),
    ]
}

/// Figure 5: effect of the skew of the data distribution (Zipf θ).
pub fn fig5(scale: Scale) -> Vec<Table> {
    let thetas = [0.3, 0.5, 0.7, 0.9];
    let tuples = scale.tuples(1000);

    let results: Vec<(f64, RunResult)> = thetas
        .iter()
        .map(|&theta| {
            let mut scenario = base_scenario(scale);
            scenario.theta = theta;
            scenario.tuples = tuples;
            (theta, run_experiment(&scenario, EngineConfig::default(), &[]))
        })
        .collect();

    let mut traffic = Table::new(
        "Figure 5(a): messages per node per tuple",
        ["theta", "total_hops", "request_ric"],
    );
    for (theta, r) in &results {
        traffic.push_row([
            format!("{theta}"),
            fmt_f(per_node_per_tuple(r.stats.traffic_total, r.nodes, r.tuples)),
            fmt_f(per_node_per_tuple(r.stats.traffic_ric, r.nodes, r.tuples)),
        ]);
    }
    let qpl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(t, r)| (format!("theta_{t}"), &r.stats.qpl)).collect();
    let sl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(t, r)| (format!("theta_{t}"), &r.stats.sl)).collect();

    vec![
        traffic,
        distribution_table("Figure 5(b): query processing load distribution", &qpl_series),
        distribution_table("Figure 5(c): storage load distribution", &sl_series),
    ]
}

/// Figure 6: effect of query complexity (4-way, 6-way and 8-way joins).
pub fn fig6(scale: Scale) -> Vec<Table> {
    let join_counts = [3usize, 5, 7]; // 4-way, 6-way, 8-way
    let tuples = scale.tuples(1000);

    let results: Vec<(usize, RunResult)> = join_counts
        .iter()
        .map(|&joins| {
            let mut scenario = base_scenario(scale);
            scenario.joins = joins;
            scenario.tuples = tuples;
            (joins + 1, run_experiment(&scenario, EngineConfig::default(), &[]))
        })
        .collect();

    let mut traffic = Table::new(
        "Figure 6(a): messages per node per tuple",
        ["way", "total_hops", "request_ric"],
    );
    for (way, r) in &results {
        traffic.push_row([
            format!("{way}-way"),
            fmt_f(per_node_per_tuple(r.stats.traffic_total, r.nodes, r.tuples)),
            fmt_f(per_node_per_tuple(r.stats.traffic_ric, r.nodes, r.tuples)),
        ]);
    }
    let qpl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(w, r)| (format!("{w}_way"), &r.stats.qpl)).collect();
    let sl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(w, r)| (format!("{w}_way"), &r.stats.sl)).collect();

    vec![
        traffic,
        distribution_table("Figure 6(b): query processing load distribution", &qpl_series),
        distribution_table("Figure 6(c): storage load distribution", &sl_series),
    ]
}

/// Figures 7 and 8: effect of the sliding-window size. Figure 7 reports
/// per-tuple traffic and ranked load distributions; Figure 8 reports the
/// cumulative query-processing and storage load as tuples arrive.
pub fn fig7_fig8(scale: Scale) -> Vec<Table> {
    let window_sizes: Vec<usize> =
        [50, 100, 200, 400, 1000].iter().map(|w| scale.tuples(*w)).collect();
    let tuples = scale.tuples(1000);

    let results: Vec<(usize, RunResult)> = window_sizes
        .iter()
        .map(|&w| {
            let mut scenario = base_scenario(scale);
            scenario.tuples = tuples;
            scenario.window = WindowSpec::sliding_tuples(w as u64);
            (w, run_experiment(&scenario, EngineConfig::default(), &[]))
        })
        .collect();

    let mut traffic = Table::new(
        "Figure 7(a): messages per node per tuple",
        ["window", "total_hops", "request_ric"],
    );
    for (w, r) in &results {
        traffic.push_row([
            w.to_string(),
            fmt_f(per_node_per_tuple(r.stats.traffic_total, r.nodes, r.tuples)),
            fmt_f(per_node_per_tuple(r.stats.traffic_ric, r.nodes, r.tuples)),
        ]);
    }
    let qpl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(w, r)| (format!("W_{w}"), &r.stats.qpl)).collect();
    let sl_series: Vec<(String, &Distribution)> =
        results.iter().map(|(w, r)| (format!("W_{w}"), &r.stats.sl)).collect();
    let fig7b = distribution_table("Figure 7(b): query processing load distribution", &qpl_series);
    let fig7c = distribution_table("Figure 7(c): storage load distribution", &sl_series);

    // Figure 8: cumulative load as tuples arrive, one column per window size.
    let mut headers = vec!["tuple".to_string()];
    headers.extend(results.iter().map(|(w, _)| format!("W_{w}")));
    let mut fig8a = Table::new("Figure 8(a): cumulative query processing load", headers.clone());
    let mut fig8b = Table::new("Figure 8(b): cumulative storage load", headers);

    let curves_qpl: Vec<CumulativeSeries> = results
        .iter()
        .map(|(_, r)| {
            let mut s = CumulativeSeries::new();
            for &v in &r.per_tuple_qpl {
                s.push(v);
            }
            s
        })
        .collect();
    let curves_sl: Vec<CumulativeSeries> = results
        .iter()
        .map(|(_, r)| {
            let mut s = CumulativeSeries::new();
            for &v in &r.per_tuple_sl {
                s.push(v);
            }
            s
        })
        .collect();
    let sample_points: Vec<usize> = (1..=10).map(|i| i * tuples / 10).collect();
    for point in sample_points {
        let idx = point.saturating_sub(1);
        let mut row_a = vec![point.to_string()];
        let mut row_b = vec![point.to_string()];
        for (qc, sc) in curves_qpl.iter().zip(&curves_sl) {
            row_a.push(qc.at(idx).unwrap_or(qc.total()).to_string());
            row_b.push(sc.at(idx).unwrap_or(sc.total()).to_string());
        }
        fig8a.push_row(row_a);
        fig8b.push_row(row_b);
    }

    vec![traffic, fig7b, fig7c, fig8a, fig8b]
}

/// Aggregates per-key loads onto a ring.
fn aggregate_on_ring(ring: &ChordNetwork, key_loads: &BTreeMap<Id, u64>) -> Distribution {
    let loads = balance::node_loads(ring, key_loads).expect("non-empty ring");
    Distribution::from_values(loads.values().copied())
}

/// The point-mass skew workload of the Figure 9 extension, scaled.
fn skew_scenario(scale: Scale) -> Scenario {
    let mut scenario = Scenario::skew_test(0.9);
    match scale {
        Scale::Full => {
            scenario.nodes = 128;
            scenario.queries = 240;
            scenario.tuples = 400;
        }
        Scale::Reduced => {}
        Scale::Smoke => {
            scenario.queries = 60;
            scenario.tuples = 50;
        }
    }
    scenario
}

/// Figure 9 extension: hot-key splitting vs identifier movement on the
/// point-mass skew workload (θ = 0.9 plus a hotspot). Identifier movement
/// alone cannot divide the hottest key's load; share-based splitting turns
/// it into medium sub-keys that identifier movement then balances, so the
/// two tiers compose. One summary table: per-node QPL max / Gini /
/// participants for (a) no balancing, (b) identifier movement only,
/// (c) splitting + identifier movement — plus the answer counts proving
/// the split run delivers the same answers.
pub fn fig9_split(scale: Scale) -> Vec<Table> {
    let scenario = skew_scenario(scale);
    let base_config = EngineConfig::default().with_altt(8_000);
    let split_config = base_config.clone().with_hot_key_splitting(12, 16);
    let unsplit = run_experiment(&scenario, base_config, &[]);
    let split = run_experiment(&scenario, split_config, &[]);

    let mut reference: Network<()> = Network::new(NetworkConfig::default());
    reference.bootstrap(scenario.nodes, "rjoin-node");
    let raw = aggregate_on_ring(reference.dht(), &unsplit.qpl_by_key);

    let moves = scenario.nodes / 4;
    let mut idmove_ring: Network<()> = Network::new(NetworkConfig::default());
    idmove_ring.bootstrap(scenario.nodes, "rjoin-node");
    balance::rebalance(idmove_ring.dht_mut(), &unsplit.qpl_by_key, moves)
        .expect("rebalance on a healthy ring");
    let idmove_only = aggregate_on_ring(idmove_ring.dht(), &unsplit.qpl_by_key);

    let mut two_tier_ring: Network<()> = Network::new(NetworkConfig::default());
    two_tier_ring.bootstrap(scenario.nodes, "rjoin-node");
    balance::rebalance(two_tier_ring.dht_mut(), &split.qpl_by_key, moves)
        .expect("rebalance on a healthy ring");
    let two_tier = aggregate_on_ring(two_tier_ring.dht(), &split.qpl_by_key);

    let mut summary = Table::new(
        "Figure 9 extension: hot-key splitting under identifier movement (skew θ=0.9 + hotspot)",
        ["metric", "unbalanced", "id_movement_only", "split_plus_id_movement"],
    );
    summary.push_row([
        "max QPL".to_string(),
        raw.max().to_string(),
        idmove_only.max().to_string(),
        two_tier.max().to_string(),
    ]);
    summary.push_row([
        "gini".to_string(),
        fmt_f(raw.gini()),
        fmt_f(idmove_only.gini()),
        fmt_f(two_tier.gini()),
    ]);
    summary.push_row([
        "participants".to_string(),
        raw.participants().to_string(),
        idmove_only.participants().to_string(),
        two_tier.participants().to_string(),
    ]);
    summary.push_row([
        "answers".to_string(),
        unsplit.answers.to_string(),
        unsplit.answers.to_string(),
        split.answers.to_string(),
    ]);
    summary.push_row([
        "keys split".to_string(),
        "0".to_string(),
        "0".to_string(),
        split.stats.splits.keys_split.to_string(),
    ]);
    vec![summary]
}

/// Figure 9: effect of identifier movement (the low-level load-balancing
/// technique of Karger & Ruhl) on the query-processing and storage load
/// distributions.
pub fn fig9(scale: Scale) -> Vec<Table> {
    let mut scenario = base_scenario(scale);
    scenario.tuples = scale.tuples(1000);
    let result = run_experiment(&scenario, EngineConfig::default(), &[]);

    // Rebuild the same ring the engine used (same deterministic bootstrap)
    // and derive the load distribution with and without identifier movement.
    let mut reference: Network<()> = Network::new(NetworkConfig::default());
    reference.bootstrap(scenario.nodes, "rjoin-node");
    let without_qpl = aggregate_on_ring(reference.dht(), &result.qpl_by_key);
    let without_sl = aggregate_on_ring(reference.dht(), &result.sl_by_key);

    // Identifier movement driven by the observed per-key query-processing
    // load; up to one move per four nodes, as in a periodic rebalancing pass.
    let mut balanced = reference;
    let moves = scenario.nodes / 4;
    balance::rebalance(balanced.dht_mut(), &result.qpl_by_key, moves)
        .expect("rebalance on a healthy ring");
    let with_qpl = aggregate_on_ring(balanced.dht(), &result.qpl_by_key);
    let with_sl = aggregate_on_ring(balanced.dht(), &result.sl_by_key);

    let fig9a = distribution_table(
        "Figure 9(a): query processing load distribution (id movement)",
        &[("without".to_string(), &without_qpl), ("with".to_string(), &with_qpl)],
    );
    let fig9b = distribution_table(
        "Figure 9(b): storage load distribution (id movement)",
        &[("without".to_string(), &without_sl), ("with".to_string(), &with_sl)],
    );

    let mut summary =
        Table::new("Figure 9 summary: id movement effect", ["metric", "without", "with"]);
    summary.push_row([
        "max QPL".to_string(),
        without_qpl.max().to_string(),
        with_qpl.max().to_string(),
    ]);
    summary.push_row([
        "QPL participants".to_string(),
        without_qpl.participants().to_string(),
        with_qpl.participants().to_string(),
    ]);
    summary.push_row([
        "max SL".to_string(),
        without_sl.max().to_string(),
        with_sl.max().to_string(),
    ]);
    summary.push_row([
        "SL participants".to_string(),
        without_sl.participants().to_string(),
        with_sl.participants().to_string(),
    ]);

    let mut tables = vec![fig9a, fig9b, summary];
    tables.extend(fig9_split(scale));
    tables
}

/// Ablation of the Section 7 traffic optimisations: RIC piggy-backing and
/// candidate-table caching on vs. off. Not a figure of the paper, but it
/// quantifies the claim that with reuse a rewritten query becomes very cheap
/// to index (k·O(log N) + 1 hops with k typically 1).
pub fn ablation_ric_reuse(scale: Scale) -> Vec<Table> {
    let mut scenario = base_scenario(scale);
    scenario.tuples = scale.tuples(400);

    let with = run_experiment(&scenario, EngineConfig::default(), &[]);
    let without = run_experiment(&scenario, EngineConfig::default().with_ric_reuse(false), &[]);

    let mut table = Table::new(
        "Ablation: RIC piggy-backing and candidate-table caching (Section 7)",
        ["metric", "with_reuse", "without_reuse"],
    );
    table.push_row([
        "messages per node".to_string(),
        fmt_f(per_node(with.stats.traffic_total, with.nodes)),
        fmt_f(per_node(without.stats.traffic_total, without.nodes)),
    ]);
    table.push_row([
        "RIC messages per node".to_string(),
        fmt_f(per_node(with.stats.traffic_ric, with.nodes)),
        fmt_f(per_node(without.stats.traffic_ric, without.nodes)),
    ]);
    table.push_row([
        "QPL per node".to_string(),
        fmt_f(per_node(with.stats.qpl_total, with.nodes)),
        fmt_f(per_node(without.stats.qpl_total, without.nodes)),
    ]);
    table.push_row(["answers".to_string(), with.answers.to_string(), without.answers.to_string()]);
    vec![table]
}

/// The characteristic scenario of each figure (its primary workload shape
/// at the given scale), used to measure one optimization across the whole
/// figure surface.
fn figure_scenarios(scale: Scale) -> Vec<(&'static str, Scenario)> {
    let base = |tuples: usize| {
        let mut s = base_scenario(scale);
        s.tuples = scale.tuples(tuples);
        s
    };
    let mut fig4 = base(1000);
    fig4.queries = scale.scaled_queries(32_000);
    let mut fig5 = base(1000);
    fig5.theta = 0.9;
    let mut fig6 = base(1000);
    fig6.joins = 5;
    let mut fig7 = base(1000);
    fig7.window = WindowSpec::sliding_tuples(scale.tuples(200) as u64);
    vec![
        ("fig2_ric_aware", base(400)),
        ("fig3_tuple_sweep", base(2560)),
        ("fig4_many_queries", fig4),
        ("fig5_skew_0.9", fig5),
        ("fig6_6way_joins", fig6),
        ("fig7_window_200", fig7),
        ("fig9_id_movement", base(1000)),
    ]
}

/// Shared sub-join evaluation measured across every figure scenario: each
/// workload runs twice — `share_subjoins` off (the paper's per-query
/// accounting) and on (the multi-query optimization) — and the table
/// reports the deltas. This is the measurement the "sharing by default"
/// question needs: the default should only flip if **every** scenario wins
/// (identical answers, no metric regresses).
pub fn sharing_modes(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "Shared sub-join evaluation across figure scenarios (off vs on)",
        [
            "scenario",
            "answers_off",
            "answers_on",
            "answers_equal",
            "traffic/node off",
            "traffic/node on",
            "qpl/node off",
            "qpl/node on",
            "stored_off",
            "stored_on",
            "merged",
            "evals_saved",
            "verdict",
        ],
    );
    for (name, scenario) in figure_scenarios(scale) {
        let off = run_experiment(&scenario, EngineConfig::default(), &[]);
        let on = run_experiment(&scenario, EngineConfig::default().with_subjoin_sharing(true), &[]);
        let answers_equal = off.answers == on.answers;
        let wins = answers_equal
            && on.stats.traffic_total <= off.stats.traffic_total
            && on.stats.qpl_total <= off.stats.qpl_total
            && on.stats.stored_queries_current <= off.stats.stored_queries_current;
        table.push_row([
            name.to_string(),
            off.answers.to_string(),
            on.answers.to_string(),
            answers_equal.to_string(),
            fmt_f(per_node(off.stats.traffic_total, off.nodes)),
            fmt_f(per_node(on.stats.traffic_total, on.nodes)),
            fmt_f(per_node(off.stats.qpl_total, off.nodes)),
            fmt_f(per_node(on.stats.qpl_total, on.nodes)),
            off.stats.stored_queries_current.to_string(),
            on.stats.stored_queries_current.to_string(),
            on.stats.sharing.merged_queries.to_string(),
            on.stats.sharing.evals_saved.to_string(),
            if wins { "win" } else { "no-win" }.to_string(),
        ]);
    }
    vec![table]
}

/// Runs the generator selected by `name` (`fig2` … `fig9`, `ablation`,
/// `sharing`, `all`).
pub fn run_figure(name: &str, scale: Scale) -> Option<Vec<Table>> {
    match name {
        "ablation" | "ablation_ric" => Some(ablation_ric_reuse(scale)),
        "sharing" | "sharing_modes" => Some(sharing_modes(scale)),
        "fig2" => Some(fig2(scale)),
        "fig3" => Some(fig3(scale)),
        "fig4" => Some(fig4(scale)),
        "fig5" => Some(fig5(scale)),
        "fig6" => Some(fig6(scale)),
        "fig7" | "fig8" | "fig7_fig8" => Some(fig7_fig8(scale)),
        "fig9" => Some(fig9(scale)),
        "fig9_split" | "skew" => Some(fig9_split(scale)),
        "all" => {
            let mut tables = Vec::new();
            tables.extend(fig2(scale));
            tables.extend(fig3(scale));
            tables.extend(fig4(scale));
            tables.extend(fig5(scale));
            tables.extend(fig6(scale));
            tables.extend(fig7_fig8(scale));
            tables.extend(fig9(scale));
            tables.extend(sharing_modes(scale));
            Some(tables)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape_holds_at_smoke_scale() {
        let tables = fig2(Scale::Smoke);
        assert_eq!(tables.len(), 3);
        let traffic = &tables[0];
        assert_eq!(traffic.headers()[1], "worst");
        let last = traffic.rows().last().unwrap();
        let worst_traffic: f64 = last[1].parse().unwrap();
        let rjoin_traffic: f64 = last[3].parse().unwrap();
        assert!(worst_traffic > 0.0 && rjoin_traffic > 0.0);

        // The query-processing-load advantage of RIC-aware placement shows
        // up even at smoke scale (the traffic advantage needs the paper's
        // query counts to amortise the RIC-request cost, see EXPERIMENTS.md).
        let qpl = &tables[1];
        let last = qpl.rows().last().unwrap();
        let worst_qpl: f64 = last[1].parse().unwrap();
        let rjoin_qpl: f64 = last[3].parse().unwrap();
        assert!(
            worst_qpl >= rjoin_qpl,
            "worst placement should not process fewer rewritten queries \
             (worst={worst_qpl}, rjoin={rjoin_qpl})"
        );
    }

    #[test]
    fn fig9_reports_both_configurations() {
        let tables = fig9(Scale::Smoke);
        assert_eq!(tables.len(), 4);
        let summary = &tables[2];
        assert_eq!(summary.rows().len(), 4);
        let max_without: u64 = summary.rows()[0][1].parse().unwrap();
        let max_with: u64 = summary.rows()[0][2].parse().unwrap();
        assert!(max_with <= max_without, "id movement must not increase the maximum load");
    }

    #[test]
    fn fig9_split_extension_composes_the_two_tiers() {
        let tables = fig9_split(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        let rows = tables[0].rows();
        assert_eq!(rows.len(), 5);
        let idmove_max: u64 = rows[0][2].parse().unwrap();
        let two_tier_max: u64 = rows[0][3].parse().unwrap();
        assert!(
            two_tier_max <= idmove_max,
            "splitting + id movement must not exceed id movement alone ({two_tier_max} vs {idmove_max})"
        );
        let answers_unsplit: u64 = rows[3][1].parse().unwrap();
        let answers_split: u64 = rows[3][3].parse().unwrap();
        assert_eq!(answers_unsplit, answers_split, "the split run must deliver the same answers");
        let keys_split: u64 = rows[4][3].parse().unwrap();
        assert!(keys_split > 0, "the smoke skew workload must trip the splitter");
    }

    #[test]
    fn unknown_figure_is_rejected() {
        assert!(run_figure("fig42", Scale::Smoke).is_none());
    }

    #[test]
    fn sharing_modes_covers_every_figure_scenario_with_sound_answers() {
        let tables = sharing_modes(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.rows().len(), figure_scenarios(Scale::Smoke).len());
        for row in table.rows() {
            // On the pinned smoke workloads every scenario delivers
            // identical answers in both modes (a regression canary, not a
            // universal invariant: without the ALTT, completeness is
            // placement-dependent, and at reduced scale the deep-join
            // scenario's answer sets genuinely shift when twins merge —
            // which is exactly why `share_subjoins` stays off by default;
            // see the ROADMAP "sharing by default" note for the numbers).
            assert_eq!(
                row[3], "true",
                "scenario {} must deliver identical answers with sharing on ({} vs {})",
                row[0], row[1], row[2]
            );
            // Stored queries can only shrink when entries merge.
            let stored_off: u64 = row[8].parse().unwrap();
            let stored_on: u64 = row[9].parse().unwrap();
            assert!(
                stored_on <= stored_off,
                "scenario {}: sharing must not store more queries ({stored_on} > {stored_off})",
                row[0]
            );
        }
    }

    #[test]
    fn ric_reuse_ablation_reports_lower_ric_traffic_with_reuse() {
        let tables = ablation_ric_reuse(Scale::Smoke);
        assert_eq!(tables.len(), 1);
        let rows = tables[0].rows();
        let ric_with: f64 = rows[1][1].parse().unwrap();
        let ric_without: f64 = rows[1][2].parse().unwrap();
        assert!(
            ric_with <= ric_without,
            "reuse must not increase RIC traffic ({ric_with} vs {ric_without})"
        );
        // The answers row is well-formed for both configurations (at smoke
        // scale a 4-way join may legitimately produce zero answers).
        let _answers_with: u64 = rows[3][1].parse().unwrap();
        let _answers_without: u64 = rows[3][2].parse().unwrap();
    }
}
