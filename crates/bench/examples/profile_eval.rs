//! Scratch profiling harness for the rewrite hot loop. Mirrors the
//! `bench_json` legs so `gprofng` profiles line up with the committed bench
//! numbers:
//!
//! * default: the standard scenario under `RicAware` placement
//!   (`placement_strategy/ric_aware`), compiled predicates off then on;
//! * `PROFILE_OVERLAP=1`: the overlapping multi-query workload under the
//!   default placement (the `sharing` / `compiled` groups), optionally with
//!   `PROFILE_SHARED=1` for the shared sub-join registry.
//!
//! `PROFILE_ITERS` repeats the run to densify profiles on noisy hosts.

use rjoin_core::{EngineConfig, PlacementStrategy, RJoinEngine};
use rjoin_workload::Scenario;
use std::time::Instant;

/// Must match `OVERLAP_PATTERNS` in `bench_json.rs`.
const OVERLAP_PATTERNS: usize = 20;

fn run(
    config: EngineConfig,
    scenario: &Scenario,
    overlap: bool,
) -> (u64, rjoin_metrics::CompileCounters) {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    let queries = if overlap {
        scenario.generate_overlapping_queries(OVERLAP_PATTERNS)
    } else {
        scenario.generate_queries()
    };
    for (i, q) in queries.into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    (engine.total_qpl(), engine.compile_counters())
}

fn main() {
    let iters: usize =
        std::env::var("PROFILE_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    let overlap = std::env::var("PROFILE_OVERLAP").is_ok_and(|v| v == "1");
    let shared = std::env::var("PROFILE_SHARED").is_ok_and(|v| v == "1");
    let scenario = Scenario { nodes: 48, queries: 300, tuples: 60, ..Scenario::small_test() };
    for compiled in [false, true] {
        let mut cfg = if overlap {
            EngineConfig::default()
        } else {
            EngineConfig::with_placement(PlacementStrategy::RicAware)
        };
        cfg = cfg.with_compiled_predicates(compiled);
        if shared {
            cfg = cfg.with_subjoin_sharing(true);
        }
        let start = Instant::now();
        let mut last = None;
        for _ in 0..iters {
            last = Some(run(cfg.clone(), &scenario, overlap));
        }
        let wall = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
        let (_, c) = last.unwrap();
        println!(
            "overlap={overlap} shared={shared} compiled={compiled}: \
             wall={wall:.1}ms eval={:.1}ms counters={c:?}",
            c.eval_nanos as f64 / 1e6
        );
    }
}
