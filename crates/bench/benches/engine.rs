//! End-to-end engine benchmarks: tuple-processing throughput under the
//! different placement strategies (the ablation behind Figure 2) and with
//! RIC reuse enabled/disabled (the Section 7 optimisation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rjoin_core::{EngineConfig, PlacementStrategy, RJoinEngine};
use rjoin_workload::Scenario;

fn bench_scenario() -> Scenario {
    Scenario { nodes: 48, queries: 300, tuples: 60, ..Scenario::small_test() }
}

fn run(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    engine.total_qpl()
}

/// Same workload, drained through `run_until_quiescent_parallel` — the
/// single global queue for `shards == 1`, the sharded event-queue runtime
/// otherwise.
fn run_parallel(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_queries().into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent_parallel().unwrap();
    engine.total_qpl()
}

fn bench_placement_strategies(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("placement_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("ric_aware", PlacementStrategy::RicAware),
        ("random", PlacementStrategy::Random),
        ("worst", PlacementStrategy::Worst),
        ("first_in_clause", PlacementStrategy::FirstInClause),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, strategy| {
            b.iter(|| run(EngineConfig::with_placement(*strategy), &scenario))
        });
    }
    group.finish();
}

fn bench_ric_reuse_ablation(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("ric_reuse");
    group.sample_size(10);
    group.bench_function("with_reuse", |b| b.iter(|| run(EngineConfig::default(), &scenario)));
    group.bench_function("without_reuse", |b| {
        b.iter(|| run(EngineConfig::default().with_ric_reuse(false), &scenario))
    });
    group.finish();
}

fn bench_window_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_size");
    group.sample_size(10);
    for window in [10u64, 40, 0] {
        let mut scenario = bench_scenario();
        scenario.window = if window == 0 {
            rjoin_query::WindowSpec::None
        } else {
            rjoin_query::WindowSpec::sliding_tuples(window)
        };
        let label = if window == 0 { "none".to_string() } else { format!("W{window}") };
        group.bench_with_input(BenchmarkId::from_parameter(label), &scenario, |b, scenario| {
            b.iter(|| run(EngineConfig::default(), scenario))
        });
    }
    group.finish();
}

/// The sharded event-queue runtime on the cascade-heavy standard workload
/// (3-join chain queries whose rewrites hop Eval/Index chains across the
/// ring): the single-queue driver versus per-shard clocks at 2/4/8 shards.
/// On a multicore host the shards run on persistent worker threads; on a
/// single core the same shard structures are driven cooperatively.
fn bench_sharding_runtime(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("sharding_runtime");
    group.sample_size(10);
    group.bench_function("single_queue", |b| {
        b.iter(|| run_parallel(EngineConfig::default(), &scenario))
    });
    for shards in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("shards{shards}")),
            &shards,
            |b, &shards| {
                b.iter(|| run_parallel(EngineConfig::default().with_shards(shards), &scenario))
            },
        );
    }
    group.finish();
}

/// The overlapping multi-query workload driven by `run` (20 sub-join
/// patterns shared by 300 queries, the workload where the fingerprint-keyed
/// program cache sees the most reuse).
fn run_overlap(config: EngineConfig, scenario: &Scenario) -> u64 {
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in scenario.generate_overlapping_queries(20).into_iter().enumerate() {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    engine.total_qpl()
}

/// The compiled predicate-program hot loop versus the rewrite interpreter
/// it replaces, on the overlapping workload: `interpreted` walks the AST
/// per (tuple, stored query) pair, `compiled` executes the flat programs
/// cached by sub-join fingerprint.
fn bench_compiled_predicates(c: &mut Criterion) {
    let scenario = bench_scenario();
    let mut group = c.benchmark_group("compiled");
    group.sample_size(10);
    group.bench_function("interpreted", |b| {
        b.iter(|| run_overlap(EngineConfig::default().with_compiled_predicates(false), &scenario))
    });
    group
        .bench_function("compiled", |b| b.iter(|| run_overlap(EngineConfig::default(), &scenario)));
    group.finish();
}

/// The long-horizon `scale` workload — a reduced cut of
/// [`Scenario::scale_test`], in lockstep with `bench_json` so the JSON
/// numbers stay comparable: thousands of overlapping windowed queries
/// (50 per shared sub-join pattern) over a publication horizon of ~125
/// window-lengths, with sharing and the ALTT on so all three state
/// families carry expiry pressure.
fn run_scale(config: EngineConfig) -> u64 {
    let scenario = Scenario { nodes: 256, queries: 2_000, tuples: 8_000, ..Scenario::scale_test() };
    let catalog = scenario.workload_schema().build_catalog();
    let mut engine = RJoinEngine::new(config, catalog, scenario.nodes);
    let origins: Vec<_> = engine.node_ids().to_vec();
    for (i, q) in
        scenario.generate_overlapping_queries(scenario.queries / 50).into_iter().enumerate()
    {
        engine.submit_query(origins[i % origins.len()], q).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    for (i, t) in scenario.generate_tuples(engine.now() + 1).into_iter().enumerate() {
        engine.publish_tuple(origins[i % origins.len()], t).unwrap();
    }
    engine.run_until_quiescent().unwrap();
    engine.total_qpl()
}

/// Timer-wheel expiry (`engine`, the default) versus the contact-sweep
/// oracle (`sweep`) on the scale workload. Both modes answer identically;
/// the delta is the price of O(active) *memory* — sweep mode reclaims only
/// on contact, so state at rings the workload stops touching survives the
/// whole horizon (~70× the wheel's live stored-query count on this cut),
/// while the wheel pays a per-delivery advance plus a pop per deadline to
/// keep peak state proportional to what can still trigger.
fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    let config = || EngineConfig::default().with_subjoin_sharing(true).with_altt(256);
    group.bench_function("engine", |b| b.iter(|| run_scale(config())));
    group.bench_function("sweep", |b| b.iter(|| run_scale(config().with_wheel_expiry(false))));
    group.finish();
}

/// The value-partitioned trigger index on the scale workload, in lockstep
/// with `bench_json`'s `probe` group: the `linear` leg walks every stored
/// query under the contacted attribute-level key per tuple and every stored
/// tuple per arriving query (the differential oracle), the `indexed` leg
/// probes only pin-matching stored queries plus the admissible publication
/// span of stored tuples. Answer streams are identical; the delta is the
/// cost of O(bucket) walks versus O(matching) probes.
fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe");
    group.sample_size(10);
    let config = || EngineConfig::default().with_subjoin_sharing(true).with_altt(256);
    group.bench_function("linear", |b| b.iter(|| run_scale(config().with_trigger_index(false))));
    group.bench_function("indexed", |b| b.iter(|| run_scale(config())));
    group.finish();
}

/// Cyclic query shapes under the two-plan planner, in lockstep with
/// `bench_json`'s `cyclic` group: the `pipeline` leg is the matched acyclic
/// chain workload (cycle knob off, same schema and counts), the `hypercube`
/// leg is the triangle workload evaluated as replicated cells with
/// cell-local partials. The delta is the price of cyclic shapes.
fn bench_cyclic_shapes(c: &mut Criterion) {
    let scenario =
        |cycle: usize| Scenario { cycle, queries: 60, tuples: 120, ..Scenario::cyclic_test() };
    let mut group = c.benchmark_group("cyclic");
    group.sample_size(10);
    group.bench_function("pipeline", |b| b.iter(|| run(EngineConfig::default(), &scenario(0))));
    group.bench_function("hypercube", |b| b.iter(|| run(EngineConfig::default(), &scenario(3))));
    group.finish();
}

criterion_group!(
    benches,
    bench_placement_strategies,
    bench_ric_reuse_ablation,
    bench_window_sizes,
    bench_sharding_runtime,
    bench_compiled_predicates,
    bench_scale,
    bench_probe,
    bench_cyclic_shapes
);
criterion_main!(benches);
