//! Micro-benchmarks for the building blocks of the RJoin reproduction:
//! SHA-1 hashing, Chord lookups, query parsing/rewriting and Zipf sampling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rjoin_dht::{sha1, ChordNetwork, Id};
use rjoin_query::{candidate_keys, parse_query, rewrite, tuple_index_keys};
use rjoin_relation::{Schema, Tuple, Value};
use rjoin_workload::ZipfSampler;

fn bench_sha1(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha1");
    for size in [16usize, 64, 1024] {
        let data = vec![0xabu8; size];
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha1::sha1(black_box(data)))
        });
    }
    group.finish();
}

fn bench_chord_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord_lookup");
    for nodes in [64usize, 256, 1024] {
        let mut net = ChordNetwork::new(8);
        for i in 0..nodes {
            net.join(Id::hash_key(&format!("bench-node-{i}"))).unwrap();
        }
        net.full_stabilize();
        let from = net.node_ids().next().unwrap();
        let keys: Vec<Id> = (0..128).map(|i| Id::hash_key(&format!("bench-key-{i}"))).collect();
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let key = keys[i % keys.len()];
                i += 1;
                net.lookup(black_box(from), black_box(key)).unwrap().hops()
            })
        });
    }
    group.finish();
}

fn bench_query_parse_and_rewrite(c: &mut Criterion) {
    let sql = "SELECT R.B, M.A FROM R, S, J, M WHERE R.A = S.A AND S.B = J.B AND J.C = M.C";
    c.bench_function("parse_4way_query", |b| b.iter(|| parse_query(black_box(sql)).unwrap()));

    let query = parse_query(sql).unwrap();
    let schema = Schema::new("R", ["A", "B", "C"]).unwrap();
    let tuple = Tuple::new("R", vec![Value::from(2), Value::from(5), Value::from(8)], 0);
    c.bench_function("rewrite_one_step", |b| {
        b.iter(|| rewrite(black_box(&query), black_box(&tuple), black_box(&schema)).unwrap())
    });
    c.bench_function("candidate_keys_4way", |b| b.iter(|| candidate_keys(black_box(&query))));
    c.bench_function("tuple_index_keys", |b| {
        b.iter(|| tuple_index_keys(black_box(&tuple), black_box(&schema)))
    });
}

fn bench_zipf(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let sampler = ZipfSampler::new(100, 0.9);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_sample_100_theta09", |b| b.iter(|| sampler.sample(black_box(&mut rng))));
}

criterion_group!(
    benches,
    bench_sha1,
    bench_chord_lookup,
    bench_query_parse_and_rewrite,
    bench_zipf
);
criterion_main!(benches);
